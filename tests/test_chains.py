"""Property suite for the chain-decomposition reachability index.

Three layers are exercised:

* the pure decomposition (:mod:`repro.graphs.chains`): chains must be a
  vertex-disjoint path cover, refinement may only lower k, and k can
  never drop below the DAG's width (checked through the max-antichain
  lower bound given by node levels);
* the frozen :class:`repro.core.chains.ChainIndex`: ``reachable`` and
  ``successors`` must agree with a plain BFS oracle on every pair, in
  O(k) per probe without re-materialising the closure (page-I/O
  counters stay flat during queries on the paged engine);
* cyclic inputs: ``build_chain_index`` must route through the
  condensation and agree both with the BFS oracle and with the
  generalized-closure evaluator of :mod:`repro.paths.closure` run on
  the condensation DAG.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chains import build_chain_index
from repro.core.query import SystemConfig
from repro.graphs.analysis import node_levels
from repro.graphs.chains import chain_decomposition
from repro.graphs.condensation import condensation
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.paths.closure import path_counts


def bfs_closure(graph) -> dict[int, set[int]]:
    """Plain BFS all-pairs reachability (node itself excluded unless
    it lies on a cycle)."""
    closure: dict[int, set[int]] = {}
    for source in graph.nodes():
        seen: set[int] = set()
        frontier = list(graph.successors(source))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(graph.successors(node))
        closure[source] = seen
    return closure


@st.composite
def random_dag(draw, max_nodes=80):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    f = draw(st.integers(min_value=0, max_value=6))
    locality = draw(st.integers(min_value=1, max_value=max(1, n)))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return generate_dag(n, f, locality, seed=seed)


@st.composite
def random_digraph(draw):
    """A directed graph that usually contains cycles."""
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    density = draw(st.floats(min_value=0.5, max_value=3.0))
    rng = random.Random(seed)
    num_arcs = int(n * density)
    arcs = {
        (rng.randrange(n), rng.randrange(n)) for _ in range(num_arcs)
    }
    return Digraph.from_arcs(n, sorted(arcs))


class TestDecomposition:
    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_chains_are_a_vertex_disjoint_path_cover(self, graph):
        for refine in (False, True):
            deco = chain_decomposition(graph, refine=refine)
            covered = [node for chain in deco.chains for node in chain]
            assert sorted(covered) == list(graph.nodes())
            for chain_id, chain in enumerate(deco.chains):
                assert chain, "empty chains must be filtered out"
                for position, node in enumerate(chain):
                    assert deco.chain_of[node] == chain_id
                    assert deco.position_of[node] == position
                for src, dst in zip(chain, chain[1:]):
                    assert dst in graph.successors(src), (
                        f"({src}, {dst}) is not an arc of the graph"
                    )

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_refinement_never_increases_k(self, graph):
        greedy = chain_decomposition(graph, refine=False)
        refined = chain_decomposition(graph, refine=True)
        assert refined.k <= greedy.k

    @given(random_dag())
    @settings(max_examples=60, deadline=None)
    def test_k_respects_the_width_lower_bound(self, graph):
        """Nodes sharing a level form an antichain, and an antichain
        meets every chain at most once -- so k >= the largest level
        population, with or without refinement."""
        levels = node_levels(graph)
        population: dict[int, int] = {}
        for level in levels.values():
            population[level] = population.get(level, 0) + 1
        width_bound = max(population.values(), default=0)
        for refine in (False, True):
            deco = chain_decomposition(graph, refine=refine)
            assert deco.k >= width_bound

    @given(random_dag())
    @settings(max_examples=30, deadline=None)
    def test_decomposition_is_deterministic(self, graph):
        first = chain_decomposition(graph)
        second = chain_decomposition(graph)
        assert first.chains == second.chains
        assert first.chain_of == second.chain_of
        assert first.position_of == second.position_of


class TestChainIndexOnDags:
    @given(random_dag(max_nodes=200))
    @settings(max_examples=25, deadline=None)
    def test_all_pairs_agree_with_bfs(self, graph):
        closure = bfs_closure(graph)
        index = build_chain_index(graph)
        assert not index.condensed
        for src in graph.nodes():
            assert index.successors(src) == sorted(closure[src])
            for dst in graph.nodes():
                assert index.reachable(src, dst) == (dst in closure[src]), (
                    src,
                    dst,
                )

    @given(random_dag())
    @settings(max_examples=20, deadline=None)
    def test_unrefined_index_answers_identically(self, graph):
        closure = bfs_closure(graph)
        index = build_chain_index(graph, refine=False)
        for src in graph.nodes():
            assert index.successors(src) == sorted(closure[src])

    def test_queries_keep_page_io_flat_on_the_paged_engine(self):
        """The acceptance criterion of the index: once built, a probe
        is a k-entry vector comparison -- the storage substrate is
        never consulted again, so the page-I/O bill does not move."""
        graph = generate_dag(150, 4, 30, seed=11)
        index = build_chain_index(
            graph, system=SystemConfig(buffer_pages=10, engine="paged")
        )
        build_io = index.metrics.total_io
        assert build_io > 0
        for src in graph.nodes():
            index.successors(src)
            for dst in range(0, graph.num_nodes, 7):
                index.reachable(src, dst)
        assert index.metrics.total_io == build_io

    def test_fast_engine_builds_with_zero_page_io(self):
        graph = generate_dag(150, 4, 30, seed=11)
        index = build_chain_index(
            graph, system=SystemConfig(buffer_pages=10, engine="fast")
        )
        assert index.metrics.total_io == 0
        paged = build_chain_index(
            graph, system=SystemConfig(buffer_pages=10, engine="paged")
        )
        assert paged.vectors == index.vectors


class TestChainIndexOnCyclicGraphs:
    @given(random_digraph())
    @settings(max_examples=40, deadline=None)
    def test_cyclic_inputs_agree_with_bfs(self, graph):
        closure = bfs_closure(graph)
        index = build_chain_index(graph)
        for src in graph.nodes():
            assert index.successors(src) == sorted(closure[src])
            for dst in graph.nodes():
                assert index.reachable(src, dst) == (dst in closure[src]), (
                    src,
                    dst,
                )

    @given(random_digraph())
    @settings(max_examples=25, deadline=None)
    def test_condensed_index_agrees_with_generalized_closure(self, graph):
        """Cross-check against :mod:`repro.paths.closure`: over the
        condensation DAG a pair of distinct components is reachable iff
        the path-count semiring assigns it a positive value."""
        cond = condensation(graph)
        counts = path_counts(cond.dag)
        index = build_chain_index(graph)
        for src in graph.nodes():
            a = cond.component_of[src]
            for dst in graph.nodes():
                b = cond.component_of[dst]
                if a != b:
                    expected = counts.value(a, b) > 0
                elif len(cond.members[a]) > 1:
                    expected = True
                else:
                    expected = src in cond.self_loops
                assert index.reachable(src, dst) == expected, (src, dst)
