"""Determinism regression tests for the experiment protocol.

The parallel engine's bit-identical guarantee rests on one invariant:
an experimental cell is a pure function of its explicit seeds.  These
tests guard that invariant against accidental ``dict``-ordering,
``hash``-randomisation, or mutable-global-state nondeterminism -- by
running the same cell twice in one process, and once more in a fresh
subprocess (with a different ``PYTHONHASHSEED``), and requiring the
simulator counters to match exactly.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.query import SystemConfig
from repro.experiments.config import get_profile
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import average_runs

CELL = dict(algorithm="jkb2", family="G5")

# AveragedMetrics contains only simulated counters (no wall-clock or
# CPU fields), so full dataclass equality is the right comparison.


def _run_cell():
    return average_runs(
        CELL["algorithm"], CELL["family"], QuerySpec.selection(3),
        get_profile("smoke"), SystemConfig(buffer_pages=10),
    )


class TestInProcessDeterminism:
    def test_same_cell_twice_is_bit_identical(self):
        assert _run_cell() == _run_cell()

    def test_counters_stable_across_graph_rebuilds(self):
        """Rebuilding the graph from its seed cannot change counters."""
        first = dataclasses.asdict(_run_cell())
        second = dataclasses.asdict(_run_cell())
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


_SUBPROCESS_SCRIPT = """
import dataclasses, json
from repro.core.query import SystemConfig
from repro.experiments.config import get_profile
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import average_runs

metrics = average_runs("{algorithm}", "{family}", QuerySpec.selection(3),
                       get_profile("smoke"), SystemConfig(buffer_pages=10))
print(json.dumps(dataclasses.asdict(metrics), sort_keys=True))
"""


class TestCrossProcessDeterminism:
    def test_subprocess_with_fresh_interpreter_matches(self):
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}{os.pathsep}{env.get('PYTHONPATH', '')}"
        # A different hash seed would expose any reliance on set/dict
        # iteration order of hash-randomised keys.
        env["PYTHONHASHSEED"] = "12345"
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT.format(**CELL)],
            capture_output=True, text=True, env=env, timeout=300, check=False,
        )
        assert completed.returncode == 0, completed.stderr
        subprocess_metrics = json.loads(completed.stdout)
        local_metrics = dataclasses.asdict(_run_cell())
        assert subprocess_metrics == local_metrics
