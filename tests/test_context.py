"""Tests for the execution context and shared restructuring phase."""

from repro.core.base import topological_sort_map
from repro.core.btc import BtcAlgorithm
from repro.core.context import ExecutionContext
from repro.core.query import Query, SystemConfig
from repro.graphs.digraph import Digraph
from repro.storage.iostats import Phase
from repro.storage.page import PageKind


def restructured(graph, query) -> ExecutionContext:
    algorithm = BtcAlgorithm()
    ctx = ExecutionContext(graph, query, SystemConfig())
    algorithm.restructure(ctx)
    return ctx


class TestScopeIdentification:
    def test_full_query_scans_the_relation(self, medium_dag):
        ctx = restructured(medium_dag, Query.full())
        assert ctx.in_scope == set(medium_dag.nodes())
        expected_pages = ctx.relation.num_pages
        assert ctx.metrics.io.reads_of(PageKind.RELATION) == expected_pages

    def test_selection_uses_the_index(self, medium_dag):
        ctx = restructured(medium_dag, Query.ptc([0]))
        assert ctx.metrics.io.reads_of(PageKind.INDEX) >= 1

    def test_selection_scope_is_the_magic_graph(self, medium_dag):
        from repro.graphs.toposort import reachable_from

        ctx = restructured(medium_dag, Query.ptc([0, 50]))
        assert ctx.in_scope == reachable_from(medium_dag, [0, 50])

    def test_initial_lists_hold_the_children(self, diamond):
        ctx = restructured(diamond, Query.full())
        assert ctx.lists[0] == 0b1110  # children 1, 2 and 3 (shortcut)
        assert ctx.store.length(0) == 3


class TestProfileCollection:
    def test_rectangle_model_collected(self, medium_dag):
        from repro.graphs.analysis import profile_graph

        ctx = restructured(medium_dag, Query.full())
        expected = profile_graph(medium_dag, include_closure_size=False)
        assert ctx.height == expected.height
        assert ctx.width == expected.width
        assert ctx.max_level == expected.max_level

    def test_topological_positions_respect_arcs(self, medium_dag):
        ctx = restructured(medium_dag, Query.full())
        for src, dst in medium_dag.arcs():
            assert ctx.position[src] < ctx.position[dst]


class TestUnionList:
    def test_union_counts_and_contents(self, diamond):
        ctx = restructured(diamond, Query.full())
        ctx.metrics.io.phase = Phase.COMPUTE
        # Expand node 1 first (its child 3 is a sink), then union into 0.
        ctx.union_list(1, 3)
        before_unions = ctx.metrics.list_unions
        ctx.union_list(0, 1)
        assert ctx.metrics.list_unions == before_unions + 1
        assert (ctx.lists[0] >> 3) & 1  # 3 arrived through 1's list

    def test_union_counts_duplicates(self, diamond):
        ctx = restructured(diamond, Query.full())
        ctx.union_list(1, 3)
        ctx.union_list(2, 3)
        ctx.union_list(0, 1)
        dups_before = ctx.metrics.duplicates
        ctx.union_list(0, 2)  # 2's list {3} is already in 0's list
        assert ctx.metrics.duplicates == dups_before + 1


class TestTopologicalSortMap:
    def test_sorts_adjacency_dicts(self):
        order = topological_sort_map({0: [1], 1: [2], 2: []})
        assert order == [0, 1, 2]

    def test_detects_cycles(self):
        import pytest

        from repro.errors import CyclicGraphError

        with pytest.raises(CyclicGraphError):
            topological_sort_map({0: [1], 1: [0]})

    def test_deep_adjacency_is_iterative(self):
        n = 10_000
        adjacency = {i: [i + 1] for i in range(n - 1)}
        adjacency[n - 1] = []
        assert topological_sort_map(adjacency)[0] == 0
