"""Chaos tests for the serve layer: no fault plan may corrupt an answer.

Every test arms a *seeded* fault plan (deterministic firing points) and
checks the serving contract from the acceptance criteria: under any
injected fault the server returns either a correct answer (possibly
flagged ``degraded``, from the last-good index), or a structured
503/504, or drops the connection -- never a wrong value.  Every 200
response is checked against the direct-search oracle.
"""

import asyncio
import os
import random

import pytest

from repro.chaos.faults import (
    SERVE_FAULT_KINDS,
    STORAGE_FAULT_KINDS,
    FaultKind,
    FaultPlan,
    set_fault_plan,
)
from repro.core.query import SystemConfig
from repro.graphs.generator import generate_dag
from repro.graphs.toposort import reachable_from
from repro.serve.breaker import BreakerState
from repro.serve.http import ServeClient, ServeServer
from repro.serve.service import ReachabilityService, ServeConfig


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    set_fault_plan(None)
    yield
    os.environ.pop("REPRO_CHAOS", None)
    set_fault_plan(None)


@pytest.fixture
def graph():
    return generate_dag(120, 2.0, 15, seed=5)


def arm(spec):
    plan = FaultPlan.parse(spec)
    set_fault_plan(plan)
    return plan


def oracle(graph, u, v):
    return v != u and v in reachable_from(graph, [u])


def make_service(graph, engine="fast", clock=None, **overrides):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    return ReachabilityService(
        graph,
        system=SystemConfig(engine=engine),
        config=ServeConfig(**overrides),
        **kwargs,
    )


async def run_seeded_queries(graph, client, count, seed=0, deadline_ms=None):
    """Fire seeded queries; classify every outcome; fail on a wrong answer.

    Returns ``(answered, structured, aborted)`` counts.  A wrong 200
    answer asserts immediately -- that is the one forbidden outcome.
    """
    rng = random.Random(seed)
    answered = structured = aborted = 0
    for _ in range(count):
        u = rng.randrange(graph.num_nodes)
        v = rng.randrange(graph.num_nodes)
        try:
            status, payload = await client.reachable(u, v, deadline_ms=deadline_ms)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            aborted += 1  # injected cancellation dropped the connection
            await client.close()
            continue
        if status == 200:
            assert payload["reachable"] == oracle(graph, u, v), (
                f"WRONG ANSWER reachable({u}, {v}) under chaos"
            )
            answered += 1
        else:
            assert status in (503, 504)
            assert "error" in payload  # structured, never a traceback
            structured += 1
    return answered, structured, aborted


# -- engine seam: serve-site faults live above the storage boundary ----------


class TestEngineSeam:
    def test_fault_kind_classification_is_total(self):
        assert SERVE_FAULT_KINDS | STORAGE_FAULT_KINDS == frozenset(FaultKind)
        assert not SERVE_FAULT_KINDS & STORAGE_FAULT_KINDS

    def test_fast_engine_accepts_serve_only_plans(self, graph):
        arm("slow-handler,p=1.0,ms=1")

        async def run():
            service = make_service(graph)
            assert await service.build()

        asyncio.run(run())

    def test_fast_engine_still_refuses_storage_faults(self, graph):
        arm("slow-handler,p=0.5;corrupt-read,p=0.1")

        async def run():
            service = make_service(graph)
            assert not await service.build()
            assert "EngineCapabilityError" in (service.last_build_error or "")

        asyncio.run(run())


# -- no plan produces a wrong answer -----------------------------------------


PLANS = [
    "seed=1;slow-handler,p=0.3,ms=2",
    "seed=2;cancelled-request,p=0.2",
    "seed=3;poisoned-cache-entry,p=0.5",
    "seed=5;slow-handler,p=0.2,ms=1;cancelled-request,p=0.1;"
    "poisoned-cache-entry,p=0.4",
]


class TestNoWrongAnswers:
    @pytest.mark.parametrize("spec", PLANS)
    def test_every_200_matches_the_oracle(self, graph, spec, tmp_path):
        arm(spec)

        async def run():
            service = make_service(graph)
            assert await service.build()
            uds = str(tmp_path / "chaos.sock")
            server = ServeServer(service, uds=uds)
            await server.start()
            client = ServeClient(uds=uds)
            try:
                answered, structured, aborted = await run_seeded_queries(
                    graph, client, 120, seed=11
                )
            finally:
                await client.close()
                await server.close()
            assert answered > 0  # the service kept working under chaos
            assert answered + structured + aborted == 120

        asyncio.run(run())

    def test_tight_deadlines_under_slow_handlers_yield_504s(self, graph):
        arm("seed=7;slow-handler,p=0.5,ms=50")

        async def run():
            service = make_service(graph)
            assert await service.build()
            server = ServeServer(service)
            await server.start()
            client = ServeClient(port=server.port)
            try:
                answered, structured, aborted = await run_seeded_queries(
                    graph, client, 40, seed=3, deadline_ms=10
                )
            finally:
                await client.close()
                await server.close()
            # Slowed handlers blow the 10ms deadline: structured 504s,
            # correct answers otherwise, nothing else.
            assert structured > 0
            assert aborted == 0
            assert service.telemetry.count("deadline_timeouts") == structured

        asyncio.run(run())


# -- the individual serve fault sites ----------------------------------------


class TestPoisonedCache:
    def test_poison_is_detected_never_served(self, graph):
        arm("poisoned-cache-entry,p=1.0")

        async def run():
            service = make_service(graph)
            assert await service.build()
            expected = oracle(graph, 0, 90)
            for _ in range(4):
                answer = await service.reachable(0, 90)
                assert answer["reachable"] == expected
            # Every put was poisoned, so every later get re-detected it.
            assert service.cache.poison_detected >= 3
            assert service.cache.hits == 0

        asyncio.run(run())


class TestCancelledRequests:
    def test_server_survives_injected_cancellation(self, graph):
        arm("cancelled-request,after=1,times=1")

        async def run():
            service = make_service(graph)
            assert await service.build()
            server = ServeServer(service)
            await server.start()
            client = ServeClient(port=server.port)
            try:
                # First request is cancelled mid-flight; the client's
                # single reconnect lands after the rule is exhausted.
                status, payload = await client.reachable(0, 90)
                assert status == 200
                assert payload["reachable"] == oracle(graph, 0, 90)
                assert service.telemetry.count("cancelled") == 1
                # The server keeps answering on fresh connections.
                status, _ = await client.get("/healthz")
                assert status == 200
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())


class TestRebuildCrash:
    def test_breaker_trip_and_recovery_over_http(self, graph, tmp_path):
        """/readyz walks ready -> degraded -> ready, answers stay correct."""
        # Opportunity 1 (startup build) succeeds; opportunities 2..4 (the
        # three /refresh attempts) crash and trip the breaker; the rule
        # is then exhausted, so the half-open probe heals the service.
        arm("index-rebuild-crash,after=2,times=3")
        now = [0.0]

        async def run():
            service = make_service(
                graph, clock=lambda: now[0],
                breaker_threshold=3, breaker_reset_s=5.0,
                build_retries=0, backoff_base_s=0.0,
            )
            uds = str(tmp_path / "rebuild.sock")
            assert await service.build()
            server = ServeServer(service, uds=uds)
            await server.start()
            client = ServeClient(uds=uds)
            try:
                status, ready = await client.get("/readyz")
                assert (status, ready["state"]) == (200, "ready")
                baseline = await client.reachable(0, 90)
                assert baseline[0] == 200

                for _ in range(3):
                    status, payload = await client.refresh()
                    assert status == 200 and payload["rebuilt"] is False
                assert service.breaker.state is BreakerState.OPEN
                status, ready = await client.get("/readyz")
                assert (status, ready["state"]) == (503, "degraded")

                # Stale-while-revalidate: last-good index, flagged.
                status, payload = await client.reachable(0, 90)
                assert status == 200
                assert payload["reachable"] == baseline[1]["reachable"]
                assert payload["degraded"] is True

                now[0] = 5.0  # cool-down elapses -> half-open probe
                status, payload = await client.refresh()
                assert status == 200 and payload["rebuilt"] is True
                status, ready = await client.get("/readyz")
                assert (status, ready["state"]) == (200, "ready")
                status, payload = await client.reachable(0, 90)
                assert payload["degraded"] is False
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_initial_build_retries_through_transient_crashes(self, graph):
        # Crashes at opportunities 1 and 2; the second *retry* (attempt
        # 3) succeeds -- the shared backoff policy drives the loop.
        arm("index-rebuild-crash,after=1,times=2")

        async def run():
            service = make_service(
                graph, build_retries=2, backoff_base_s=0.0
            )
            assert await service.build()
            assert service.telemetry.count("rebuild_failures") == 2
            assert service.telemetry.count("rebuild_retries") == 2
            assert service.state == "ready"
            answer = await service.reachable(0, 90)
            assert answer["reachable"] == oracle(graph, 0, 90)

        asyncio.run(run())


class TestStorageFaultsViaPagedEngine:
    def test_corrupt_read_during_build_is_retried(self, graph):
        arm("corrupt-read,after=1,times=1")

        async def run():
            service = ReachabilityService(
                graph,
                system=SystemConfig(engine="paged"),
                config=ServeConfig(build_retries=1, backoff_base_s=0.0),
            )
            assert await service.build()
            assert service.telemetry.count("rebuild_failures") == 1
            assert service.last_build_error is None  # cleared by the retry
            answer = await service.reachable(0, 90)
            assert answer["reachable"] == oracle(graph, 0, 90)

        asyncio.run(run())


# -- determinism --------------------------------------------------------------


class TestDeterminism:
    def test_same_plan_same_seed_same_outcome_sequence(self, graph):
        async def one_run():
            set_fault_plan(FaultPlan.parse("seed=9;cancelled-request,p=0.15"))
            service = make_service(graph, cache_size=0)
            assert await service.build()
            outcomes = []
            rng = random.Random(21)
            for _ in range(60):
                u = rng.randrange(graph.num_nodes)
                v = rng.randrange(graph.num_nodes)
                try:
                    answer = await service.reachable(u, v)
                except asyncio.CancelledError:
                    outcomes.append("cancelled")
                else:
                    assert answer["reachable"] == oracle(graph, u, v)
                    outcomes.append("ok")
            return outcomes

        first = asyncio.run(one_run())
        second = asyncio.run(one_run())
        assert first == second
        assert "cancelled" in first and "ok" in first

    def test_slow_handler_firing_points_are_seeded(self, graph):
        def firing_pattern():
            plan = FaultPlan.parse("seed=4;slow-handler,p=0.25,ms=1")
            set_fault_plan(plan)

            async def run():
                service = make_service(graph, cache_size=0)
                assert await service.build()
                for _ in range(30):
                    await service.reachable(0, 90)
                return plan._rules[FaultKind.SLOW_HANDLER].fired

            return asyncio.run(run())

        assert firing_pattern() == firing_pattern() > 0
