"""Tests for the page geometry module."""

from repro.storage.page import (
    BLOCKS_PER_PAGE,
    BLOCK_CAPACITY,
    PAGE_SIZE,
    SUCCESSORS_PER_PAGE,
    TUPLES_PER_PAGE,
    TUPLE_SIZE,
    PageId,
    PageKind,
    pages_needed,
)


class TestGeometry:
    def test_paper_page_size(self):
        assert PAGE_SIZE == 2048

    def test_paper_tuples_per_page(self):
        # Section 5.1: 8-byte tuples, 256 per page.
        assert TUPLE_SIZE == 8
        assert TUPLES_PER_PAGE == 256

    def test_paper_successors_per_page(self):
        # Section 5.1: 30 blocks of 15 successors = 450 per page.
        assert BLOCKS_PER_PAGE == 30
        assert BLOCK_CAPACITY == 15
        assert SUCCESSORS_PER_PAGE == 450


class TestPageId:
    def test_equality_is_by_value(self):
        a = PageId(PageKind.RELATION, 3)
        b = PageId(PageKind.RELATION, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_kinds_distinguish_pages(self):
        assert PageId(PageKind.RELATION, 3) != PageId(PageKind.SUCCESSOR, 3)

    def test_numbers_distinguish_pages(self):
        assert PageId(PageKind.RELATION, 3) != PageId(PageKind.RELATION, 4)

    def test_page_id_is_immutable(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            PageId(PageKind.RELATION, 0).number = 1


class TestPagesNeeded:
    def test_zero_entries_need_no_pages(self):
        assert pages_needed(0, 256) == 0

    def test_negative_entries_need_no_pages(self):
        assert pages_needed(-5, 256) == 0

    def test_exact_fit(self):
        assert pages_needed(256, 256) == 1
        assert pages_needed(512, 256) == 2

    def test_rounding_up(self):
        assert pages_needed(1, 256) == 1
        assert pages_needed(257, 256) == 2
        assert pages_needed(450, 450) == 1
        assert pages_needed(451, 450) == 2
