"""Tests for SCC computation and the condensation graph."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.condensation import (
    condensation,
    expand_closure_to_original,
    strongly_connected_components,
)
from repro.graphs.digraph import Digraph
from repro.graphs.toposort import is_acyclic


def digraphs(max_nodes: int = 25):
    """Hypothesis strategy for arbitrary (possibly cyclic) digraphs."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=4 * n,
        ).map(lambda arcs: Digraph.from_arcs(n, arcs))
    )


class TestScc:
    def test_simple_cycle_is_one_component(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_dag_has_singleton_components(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 2), (2, 3)])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1, 1]

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, graph):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(graph.num_nodes))
        nxg.add_edges_from(graph.arcs())
        expected = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        actual = {frozenset(c) for c in strongly_connected_components(graph)}
        assert actual == expected


class TestCondensation:
    def test_condensation_is_acyclic(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)])
        assert is_acyclic(condensation(graph).dag)

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_condensation_is_always_acyclic(self, graph):
        assert is_acyclic(condensation(graph).dag)

    def test_members_partition_the_nodes(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 0), (2, 3)])
        cond = condensation(graph)
        flattened = sorted(node for members in cond.members for node in members)
        assert flattened == list(range(5))

    def test_self_loops_recorded(self):
        graph = Digraph.from_arcs(3, [(0, 0), (0, 1)])
        cond = condensation(graph)
        assert cond.self_loops == {0}


class TestExpandClosure:
    def _closure_of(self, graph: Digraph) -> dict[int, set[int]]:
        """Full cyclic-graph reachability via condensation."""
        from repro.graphs.analysis import bitset_to_nodes, transitive_closure_sets

        cond = condensation(graph)
        dag_closure = {
            comp: set(bitset_to_nodes(bits))
            for comp, bits in transitive_closure_sets(cond.dag).items()
        }
        return expand_closure_to_original(cond, dag_closure)

    def test_cycle_members_reach_each_other_and_themselves(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 0), (1, 2)])
        closure = self._closure_of(graph)
        assert closure[0] == {0, 1, 2}
        assert closure[1] == {0, 1, 2}
        assert closure[2] == set()

    def test_self_loop_node_reaches_itself(self):
        graph = Digraph.from_arcs(2, [(0, 0), (0, 1)])
        closure = self._closure_of(graph)
        assert closure[0] == {0, 1}
        assert closure[1] == set()

    @given(digraphs(max_nodes=18))
    @settings(max_examples=40, deadline=None)
    def test_expansion_matches_networkx_reachability(self, graph):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(graph.num_nodes))
        nxg.add_edges_from(graph.arcs())
        closure = self._closure_of(graph)
        for node in range(graph.num_nodes):
            expected = set(nx.descendants(nxg, node))
            if nxg.has_edge(node, node) or any(
                node in nx.descendants(nxg, child) for child in nxg.successors(node)
            ):
                expected.add(node)
            assert closure[node] == expected
