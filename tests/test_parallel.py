"""Tests for the parallel experiment engine.

The engine's contract: ``--jobs N`` produces bit-identical
:class:`AveragedMetrics` and the same :class:`RunRecord` payloads as
the serial path (wall-clock/CPU-time fields excepted -- those are
measured, not simulated, and differ even between two serial runs), and
a unit that raises or hangs yields a structured error while the rest of
the grid completes.
"""

import json
import math

import pytest

from repro.core.btc import BtcAlgorithm
from repro.core.query import SystemConfig
from repro.experiments.config import get_profile
from repro.experiments.parallel import (
    Cell,
    ExperimentEngine,
    GraphSpec,
    WorkUnit,
    execute_unit,
    failed_metrics,
    get_engine,
    run_cells,
    use_engine,
)
from repro.experiments.queries import QuerySpec
from repro.experiments.run_all import main as run_all_main
from repro.obs.sink import MemorySink

SMOKE = get_profile("smoke")

CELLS = [
    Cell("btc", "G2", QuerySpec.selection(3), SystemConfig(buffer_pages=10)),
    Cell("bj", "G2", QuerySpec.selection(3), SystemConfig(buffer_pages=10)),
    Cell("jkb2", "G2", QuerySpec.selection(3), SystemConfig(buffer_pages=10)),
    Cell("btc", "G2", QuerySpec.full(), SystemConfig(buffer_pages=10)),
]

# Measured (not simulated) time fields: the only allowed divergence
# between a serial and a parallel run of the same unit.
WALL_CLOCK_METRIC_KEYS = ("cpu_seconds", "restructure_cpu_seconds")


def record_payload(record) -> str:
    """A record's JSON form with the wall-clock fields removed."""
    payload = record.to_dict()
    payload.pop("wall_seconds")
    for key in WALL_CLOCK_METRIC_KEYS:
        payload["metrics"].pop(key, None)
    return json.dumps(payload, sort_keys=True)


class TestParallelEqualsSerial:
    def test_jobs4_metrics_bit_identical_and_records_match(self):
        serial_sink, parallel_sink = MemorySink(), MemorySink()
        serial = ExperimentEngine(jobs=1).run_cells(CELLS, SMOKE, sink=serial_sink)
        with ExperimentEngine(jobs=4) as engine:
            parallel = engine.run_cells(CELLS, SMOKE, sink=parallel_sink)
            assert not engine.failures
        # Bit-identical averages: dataclass equality compares every
        # float exactly, no tolerance.
        assert serial == parallel
        # Same records, in the same canonical order, modulo wall clock.
        assert [record_payload(r) for r in serial_sink.records] == [
            record_payload(r) for r in parallel_sink.records
        ]

    def test_repeated_grid_replays_identically(self):
        """The cell memo returns the same metrics and re-emits records."""
        with ExperimentEngine(jobs=2) as engine:
            first_sink, second_sink = MemorySink(), MemorySink()
            first = engine.run_cells(CELLS, SMOKE, sink=first_sink)
            second = engine.run_cells(CELLS, SMOKE, sink=second_sink)
        assert first == second
        assert [record_payload(r) for r in first_sink.records] == [
            record_payload(r) for r in second_sink.records
        ]

    def test_run_all_output_file_is_byte_identical(self, tmp_path, monkeypatch, capsys):
        outputs = []
        for jobs, subdir in (("1", "serial"), ("2", "parallel")):
            cwd = tmp_path / subdir
            cwd.mkdir()
            monkeypatch.chdir(cwd)
            assert run_all_main(
                ["--profile", "smoke", "--only", "figure11", "--jobs", jobs]
            ) == 0
            outputs.append((cwd / "experiments_output_smoke.txt").read_bytes())
        capsys.readouterr()
        assert outputs[0] == outputs[1]

    def test_default_engine_is_serial(self):
        engine = get_engine()
        assert engine.jobs == 1 and not engine.parallel

    def test_use_engine_scopes_the_active_engine(self):
        with ExperimentEngine(jobs=2) as engine:
            with use_engine(engine):
                assert get_engine() is engine
            assert get_engine() is not engine


class TestGraphSpec:
    def test_profile_spec_matches_profile_build(self):
        spec = GraphSpec.for_profile("G2", SMOKE, seed=1)
        built, reference = spec.build(), SMOKE.build("G2", seed=1)
        assert built.num_nodes == reference.num_nodes
        assert list(built.arcs()) == list(reference.arcs())

    def test_worker_graph_cache_reuses_the_graph(self):
        from repro.experiments import parallel as par

        par._GRAPH_CACHE.clear()
        spec = GraphSpec.for_profile("G2", SMOKE, seed=0)
        unit = WorkUnit(cell_index=0, algorithm="btc", graph=spec,
                        query=QuerySpec.selection(2), system=SystemConfig(buffer_pages=10))
        execute_unit(unit, timeout=None)
        cached = par._GRAPH_CACHE[spec]
        execute_unit(unit, timeout=None)
        assert par._GRAPH_CACHE[spec] is cached
        assert len(par._GRAPH_CACHE) == 1
        par._GRAPH_CACHE.clear()


class TestFaultInjection:
    def test_raising_unit_yields_structured_error_and_partial_results(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(BtcAlgorithm, "run", boom)
        # btc is broken; spn does not inherit from BtcAlgorithm.
        cells = [CELLS[0],
                 Cell("spn", "G2", QuerySpec.selection(3), SystemConfig(buffer_pages=10))]
        with ExperimentEngine(jobs=2) as engine:
            results = engine.run_cells(cells, SMOKE)
            failures = list(engine.failures)
        # The broken cell is marked, the healthy cell completed.
        assert results[0].runs == 0 and math.isnan(results[0].total_io)
        assert results[1].runs > 0 and results[1].total_io > 0
        assert failures
        error = failures[0]
        assert error.kind == "exception"
        assert "injected failure" in error.message
        assert error.attempts == 2  # one retry happened
        assert error.unit["algorithm"] == "btc"

    def test_hanging_unit_times_out(self, monkeypatch):
        import time as time_module

        def hang(self, *args, **kwargs):
            time_module.sleep(60)

        monkeypatch.setattr(BtcAlgorithm, "run", hang)
        with ExperimentEngine(jobs=2, timeout=0.5) as engine:
            results = engine.run_cells([CELLS[0]], SMOKE)
            failures = list(engine.failures)
        assert math.isnan(results[0].total_io)
        assert failures and failures[0].kind == "timeout"

    def test_run_all_exits_nonzero_on_failed_cells(self, tmp_path, monkeypatch, capsys):
        def boom(self, *args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(BtcAlgorithm, "run", boom)
        monkeypatch.chdir(tmp_path)
        code = run_all_main(
            ["--profile", "smoke", "--only", "figure11", "--jobs", "2", "--no-file"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "failed" in captured.err
        assert "injected failure" in captured.err
        # Partial results still rendered, with the failed cells marked.
        assert "Figure 11" in captured.out
        assert "nan" in captured.out
        assert "JKB2" in captured.out

    def test_failed_metrics_sentinel_is_all_nan(self):
        sentinel = failed_metrics("btc")
        assert sentinel.algorithm == "btc" and sentinel.runs == 0
        assert math.isnan(sentinel.total_io) and math.isnan(sentinel.hit_ratio)


class TestEngineValidation:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_map_units_preserves_submission_order(self):
        spec = GraphSpec.for_profile("G2", SMOKE, seed=0)
        units = [
            WorkUnit(cell_index=i, algorithm=name, graph=spec,
                     query=QuerySpec.selection(2), system=SystemConfig(buffer_pages=10))
            for i, name in enumerate(("bj", "btc", "spn"))
        ]
        with ExperimentEngine(jobs=3) as engine:
            outcomes = engine.map_units(units)
        assert [o.cell_index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)
        assert [o.result.algorithm for o in outcomes] == ["bj", "btc", "spn"]
