"""Tests for the high-level convenience API."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.core.query import SystemConfig
from repro.errors import ConfigurationError
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag


class TestTransitiveClosure:
    def test_from_arcs(self):
        closure = api.transitive_closure(arcs=[(0, 1), (1, 2)], num_nodes=3)
        assert closure.successors == {0: {1, 2}, 1: {2}, 2: set()}

    def test_from_graph(self, small_dag):
        closure = api.transitive_closure(small_dag)
        assert len(closure.successors) == small_dag.num_nodes

    def test_graph_and_arcs_are_mutually_exclusive(self, small_dag):
        with pytest.raises(ConfigurationError):
            api.transitive_closure(small_dag, arcs=[(0, 1)], num_nodes=2)

    def test_arcs_require_num_nodes(self):
        with pytest.raises(ConfigurationError):
            api.transitive_closure(arcs=[(0, 1)])

    def test_selection(self, small_dag):
        closure = api.transitive_closure(small_dag, sources=[0, 5])
        assert set(closure.successors) == {0, 5}

    def test_explicit_algorithm(self, small_dag):
        closure = api.transitive_closure(small_dag, algorithm="spn")
        assert closure.chosen_algorithm == "spn"

    def test_system_config_wins_over_buffer_pages(self, small_dag):
        closure = api.transitive_closure(
            small_dag, system=SystemConfig(buffer_pages=5), buffer_pages=50
        )
        assert closure.metrics.total_io > 0


class TestCyclicInputs:
    def test_cycle_members_reach_themselves(self):
        closure = api.transitive_closure(arcs=[(0, 1), (1, 0), (1, 2)], num_nodes=3)
        assert closure.condensed
        assert closure.reaches(0, 0)
        assert closure.successors[0] == {0, 1, 2}
        assert closure.successors[2] == set()

    def test_cyclic_selection(self):
        closure = api.transitive_closure(
            arcs=[(0, 1), (1, 0), (1, 2), (3, 0)], num_nodes=4, sources=[3]
        )
        assert set(closure.successors) == {3}
        assert closure.successors[3] == {0, 1, 2}

    def test_acyclic_input_is_not_condensed(self, small_dag):
        closure = api.transitive_closure(small_dag)
        assert not closure.condensed

    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_on_cyclic_graphs(self, n, seed):
        import random

        rng = random.Random(seed)
        arcs = [(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)]
        graph = Digraph.from_arcs(n, arcs)
        closure = api.transitive_closure(graph)

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(arcs)
        for node in range(n):
            expected = set(nx.descendants(nxg, node))
            if nxg.has_edge(node, node) or any(
                node in nx.descendants(nxg, child) for child in nxg.successors(node)
            ):
                expected.add(node)
            assert closure.successors[node] == expected, node


class TestChooseAlgorithm:
    def test_full_closure_uses_btc(self, medium_dag):
        assert api.choose_algorithm(medium_dag) == "btc"

    def test_tiny_source_sets_use_srch(self, medium_dag):
        assert api.choose_algorithm(medium_dag, sources=[0]) == "srch"

    def test_huge_source_sets_use_btc(self, medium_dag):
        sources = range(medium_dag.num_nodes)
        assert api.choose_algorithm(medium_dag, sources=sources) == "btc"

    def test_narrow_graphs_use_jkb2(self):
        # A long path is as narrow as a DAG gets (W = 1-ish).
        chain = Digraph.from_arcs(300, [(i, i + 1) for i in range(299)])
        sources = list(range(0, 300, 20))
        assert api.choose_algorithm(chain, sources=sources) == "jkb2"

    def test_empty_sources_raise(self, medium_dag):
        with pytest.raises(ConfigurationError):
            api.choose_algorithm(medium_dag, sources=[])

    def test_auto_answers_are_correct(self):
        graph = generate_dag(150, 4, 40, seed=77)
        for sources in (None, [0], list(range(0, 150, 10))):
            closure = api.transitive_closure(graph, sources=sources)
            reference = api.transitive_closure(graph, sources=sources, algorithm="btc")
            assert closure.successors == reference.successors


class TestReachable:
    def test_positive_probe(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        assert api.reachable(graph, 0, 2)

    def test_negative_probe(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        assert not api.reachable(graph, 1, 0)

    def test_self_probe_needs_a_cycle(self):
        acyclic = Digraph.from_arcs(2, [(0, 1)])
        assert not api.reachable(acyclic, 0, 0)
        cyclic = Digraph.from_arcs(2, [(0, 1), (1, 0)])
        assert api.reachable(cyclic, 0, 0)


class TestClosureObject:
    def test_tuples_count(self):
        closure = api.transitive_closure(arcs=[(0, 1), (1, 2)], num_nodes=3)
        assert closure.tuples == 3

    def test_successors_of_sorted(self):
        closure = api.transitive_closure(arcs=[(0, 2), (0, 1)], num_nodes=3)
        assert closure.successors_of(0) == [1, 2]
        assert closure.successors_of(9) == []
