"""Tests for the observability subsystem (spans, records, sinks, compare)."""

import json

import pytest

import repro
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.obs.bench import build_bench_summary
from repro.obs.compare import compare_runs, load_records
from repro.obs.record import RunRecord, io_stats_dict, summarise_trace
from repro.obs.sink import (
    JsonlSink,
    MemorySink,
    NullSink,
    get_global_sink,
    obs_enabled,
    set_global_sink,
)
from repro.obs.spans import NULL_SPAN, SpanRecorder, span
from repro.storage.trace import PageTrace


class TestSpans:
    def test_nesting_builds_paths(self):
        recorder = SpanRecorder()
        with recorder.span("run"):
            with recorder.span("restructure"):
                pass
            with recorder.span("compute"):
                with recorder.span("pool.read"):
                    pass
        paths = {stats.path for stats in recorder.stats()}
        assert paths == {"run", "run/restructure", "run/compute", "run/compute/pool.read"}

    def test_same_path_aggregates(self):
        recorder = SpanRecorder()
        for _ in range(5):
            with recorder.span("tick"):
                pass
        stats = recorder.get("tick")
        assert stats.count == 5
        assert stats.total_seconds >= stats.max_seconds >= stats.min_seconds >= 0

    def test_disabled_recorder_records_nothing(self):
        recorder = SpanRecorder(enabled=False)
        with recorder.span("run"):
            pass
        assert recorder.stats() == []
        assert recorder.span("run") is NULL_SPAN

    def test_module_level_span_with_none_is_noop(self):
        with span("anything", None):
            pass  # must not raise and must not allocate a recorder

    def test_exception_still_recorded_and_propagates(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("x")
        assert recorder.get("boom").count == 1

    def test_as_dict_shape(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        payload = recorder.as_dict()["a"]
        assert set(payload) == {"count", "total_seconds", "min_seconds", "max_seconds"}
        json.dumps(payload)  # JSON-safe


@pytest.fixture
def instrumented_run(small_dag):
    recorder = SpanRecorder()
    trace = PageTrace()
    result = make_algorithm("btc").run(
        small_dag,
        Query.ptc([0, 1, 2]),
        SystemConfig(buffer_pages=10),
        recorder=recorder,
        trace=trace,
    )
    return result, recorder, trace


class TestRunRecord:
    def test_from_result_captures_everything(self, instrumented_run):
        result, recorder, trace = instrumented_run
        record = RunRecord.from_result(
            result, workload={"name": "small_dag"}, recorder=recorder, trace=trace
        )
        assert record.algorithm == "btc"
        assert record.query == {"kind": "ptc", "selectivity": 3}
        assert record.system["buffer_pages"] == 10
        assert record.metrics["total_io"] == result.metrics.total_io
        io = record.metrics["io"]
        assert set(io["reads_by_phase"]) == {"restructure", "compute", "writeout"}
        assert io["total_io"] == result.metrics.total_io
        assert "run/restructure" in record.spans
        assert record.trace["requests"] > 0
        assert record.wall_seconds > 0  # taken from the "run" span

    def test_json_roundtrip(self, instrumented_run):
        result, recorder, trace = instrumented_run
        record = RunRecord.from_result(result, workload={"n": 60}, recorder=recorder)
        line = record.to_json()
        assert "\n" not in line
        back = RunRecord.from_json(line)
        assert back == record

    def test_cell_key_groups_repetitions(self, small_dag):
        results = [
            make_algorithm("btc").run(small_dag, Query.ptc([i]))
            for i in range(2)
        ]
        keys = {
            RunRecord.from_result(r, workload={"family": "X"}).cell_key()
            for r in results
        }
        assert len(keys) == 1  # same algorithm, workload, query shape and config

    def test_cell_key_separates_system_configs(self, small_dag):
        keys = {
            RunRecord.from_result(
                make_algorithm("btc").run(
                    small_dag, Query.full(), SystemConfig(buffer_pages=pages)
                ),
                workload={"family": "X"},
            ).cell_key()
            for pages in (10, 50)
        }
        assert len(keys) == 2  # a buffer-size sweep is two cells, not one

    def test_io_stats_dict_kind_breakdown(self, instrumented_run):
        result, _, _ = instrumented_run
        payload = io_stats_dict(result.metrics.io)
        assert payload["total_reads"] == sum(payload["reads_by_phase"].values())
        assert payload["total_reads"] == sum(payload["reads_by_kind"].values())


class TestTraceSummary:
    def test_summary_fields(self, instrumented_run):
        _, _, trace = instrumented_run
        summary = summarise_trace(trace, buckets=5, top_k=3)
        assert summary["requests"] > 0
        assert 1 <= len(summary["hit_ratio_timeline"]) <= 5
        assert all(0.0 <= r <= 1.0 for r in summary["hit_ratio_timeline"])
        assert sum(summary["kind_histogram"].values()) == summary["requests"]
        assert len(summary["hot_pages"]) <= 3
        assert summary["hot_pages"][0]["requests"] >= summary["hot_pages"][-1]["requests"]

    def test_empty_trace(self):
        summary = summarise_trace(PageTrace())
        assert summary["requests"] == 0
        assert summary["hit_ratio_timeline"] == []
        assert summary["hot_pages"] == []


class TestSinks:
    def test_jsonl_sink_appends_lines(self, tmp_path, instrumented_run):
        result, recorder, _ = instrumented_run
        record = RunRecord.from_result(result, recorder=recorder)
        path = tmp_path / "runs.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(record)
            sink.emit(record)
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[0].algorithm == "btc"

    def test_jsonl_sink_env_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs_enabled()
        sink = JsonlSink(tmp_path / "runs.jsonl")
        sink.emit(RunRecord(algorithm="btc"))
        sink.close()
        assert not (tmp_path / "runs.jsonl").exists()

    def test_explicit_enabled_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        sink = JsonlSink(tmp_path / "runs.jsonl", enabled=True)
        sink.emit(RunRecord(algorithm="btc"))
        sink.close()
        assert (tmp_path / "runs.jsonl").exists()

    def test_memory_and_null_sinks(self):
        memory = MemorySink()
        memory.emit(RunRecord(algorithm="btc"))
        assert len(memory) == 1
        NullSink().emit(RunRecord(algorithm="btc"))  # no-op

    def test_global_sink_install_and_restore(self):
        sink = MemorySink()
        previous = set_global_sink(sink)
        try:
            assert get_global_sink() is sink
        finally:
            set_global_sink(previous)
        assert get_global_sink() is previous


def _record(algorithm="btc", family="G1", query=None, total_io=100.0, cpu=1.0):
    return RunRecord(
        algorithm=algorithm,
        workload={"family": family},
        query=query or {"kind": "full", "selectivity": None},
        metrics={"total_io": total_io, "cpu_seconds": cpu},
    )


class TestCompare:
    def test_no_regression(self):
        report = compare_runs([_record()], [_record(total_io=100.0)])
        assert report.ok
        assert len(report.deltas) == 2  # total_io and cpu_seconds

    def test_regression_beyond_threshold(self):
        report = compare_runs([_record()], [_record(total_io=120.0)], threshold=0.05)
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "total_io"
        assert regression.ratio == pytest.approx(0.2)

    def test_growth_within_threshold_passes(self):
        report = compare_runs([_record()], [_record(total_io=104.0)], threshold=0.05)
        assert report.ok

    def test_cpu_gate_off_by_default(self):
        report = compare_runs([_record()], [_record(cpu=100.0)])
        assert report.ok

    def test_cpu_gate_opt_in(self):
        report = compare_runs(
            [_record()], [_record(cpu=100.0)], cpu_threshold=0.5
        )
        assert not report.ok

    def test_repetitions_average_within_cell(self):
        baseline = [_record(total_io=90.0), _record(total_io=110.0)]  # mean 100
        candidate = [_record(total_io=102.0), _record(total_io=104.0)]  # mean 103
        report = compare_runs(baseline, candidate, threshold=0.05)
        assert report.ok
        io_delta = next(d for d in report.deltas if d.metric == "total_io")
        assert io_delta.baseline == pytest.approx(100.0)
        assert io_delta.candidate == pytest.approx(103.0)

    def test_disjoint_cells_reported(self):
        report = compare_runs([_record(family="G1")], [_record(family="G2")])
        assert report.deltas == []
        assert len(report.missing_in_candidate) == 1
        assert len(report.new_in_candidate) == 1
        assert "(no overlapping cells" in report.render()

    def test_zero_baseline_regresses_on_any_io(self):
        report = compare_runs([_record(total_io=0.0)], [_record(total_io=1.0)])
        assert not report.ok

    def test_render_marks_regressions(self):
        report = compare_runs([_record()], [_record(total_io=200.0)])
        assert "REGRESSED" in report.render()

    def test_load_rejects_mid_file_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n" + _record().to_json() + "\n")
        with pytest.raises(ValueError):
            load_records(path)

    def test_load_tolerates_truncated_final_line(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        whole = _record().to_json()
        path.write_text(whole + "\n" + whole[: len(whole) // 2])
        records = load_records(path)
        assert len(records) == 1
        assert "truncated final" in capsys.readouterr().err


class TestBenchSummary:
    def test_one_entry_per_cell(self):
        records = [
            _record(algorithm="btc", family="G1", total_io=90.0),
            _record(algorithm="btc", family="G1", total_io=110.0),
            _record(algorithm="hyb", family="G1", total_io=80.0),
            _record(
                algorithm="btc",
                family="G1",
                query={"kind": "ptc", "selectivity": 5},
                total_io=10.0,
            ),
        ]
        summary = build_bench_summary(records)
        assert len(summary) == 3
        full_btc = next(
            e for e in summary if e["algorithm"] == "btc" and e["query"] == "full"
        )
        assert full_btc["runs"] == 2
        assert full_btc["total_io"] == pytest.approx(100.0)
        assert {"algorithm", "family", "query", "total_io", "wall_seconds"} <= set(
            summary[0]
        )
        json.dumps(summary)  # JSON-safe


class TestZeroOverheadGuard:
    """Instrumentation must never change the simulator's cost model."""

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_counters_identical_with_and_without_instrumentation(self, name, small_dag):
        query = Query.full() if name != "srch" else Query.ptc([0, 1])
        system = SystemConfig(buffer_pages=10)
        plain = make_algorithm(name).run(small_dag, query, system)
        instrumented = make_algorithm(name).run(
            small_dag, query, system, recorder=SpanRecorder(), trace=PageTrace()
        )

        def counters(result):
            summary = result.metrics.summary()
            # CPU and the I/O-time estimate derived from wall measurements
            # are the only legitimately non-deterministic entries.
            summary.pop("cpu_seconds")
            return summary

        assert counters(plain) == counters(instrumented)
        assert plain.metrics.io.reads == instrumented.metrics.io.reads
        assert plain.metrics.io.writes == instrumented.metrics.io.writes
        assert plain.successor_bits == instrumented.successor_bits

    def test_package_exports(self):
        assert repro.__version__ == "1.1.0"
        for name in ("RunRecord", "span", "SpanRecorder", "JsonlSink", "compare_runs"):
            assert hasattr(repro, name)
