"""Tests for the Spanning Tree algorithm (Section 3.5)."""

from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.spanning_tree import SpanningTreeAlgorithm
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


class TestCorrectness:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = SpanningTreeAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_matches_oracle(self, medium_dag):
        sources = [1, 44, 101]
        result = SpanningTreeAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_diamond(self, diamond):
        result = SpanningTreeAlgorithm().run(diamond)
        assert result.successors_of(0) == [1, 2, 3]


class TestTreeBehaviour:
    def test_same_markings_as_btc(self, medium_dag):
        """SPN uses the same processing order and marking test."""
        spn = SpanningTreeAlgorithm().run(medium_dag)
        btc = BtcAlgorithm().run(medium_dag)
        assert spn.metrics.arcs_marked == btc.metrics.arcs_marked
        assert spn.metrics.list_unions == btc.metrics.list_unions

    def test_fewer_tuples_fetched_than_btc(self):
        """Pruned subtrees reduce tuple reads (Section 3.5)."""
        graph = generate_dag(300, 5, 60, seed=21)
        spn = SpanningTreeAlgorithm().run(graph)
        btc = BtcAlgorithm().run(graph)
        assert spn.metrics.tuple_io <= btc.metrics.tuple_io

    def test_far_fewer_duplicates_than_btc(self):
        """Figure 7(b): the successor tree algorithms generate far
        fewer duplicates than the flat-list algorithms."""
        graph = generate_dag(300, 5, 60, seed=22)
        spn = SpanningTreeAlgorithm().run(graph)
        btc = BtcAlgorithm().run(graph)
        assert spn.metrics.duplicates < btc.metrics.duplicates

    def test_trees_occupy_more_storage_than_flat_lists(self):
        """Parent markers make trees bigger on disk (Section 6.2): the
        entries stored for a node are at least its successor count."""
        graph = generate_dag(200, 4, 50, seed=23)
        algorithm = SpanningTreeAlgorithm()
        result = algorithm.run(graph)
        # Physical entries >= logical successors for every node, with
        # strict excess somewhere (some tree has an internal node).
        total_entries = sum(
            algorithm._trees[node].entry_count for node in graph.nodes()
        )
        assert total_entries > result.num_tuples

    def test_reduced_tuple_io_does_not_imply_reduced_page_io(self):
        """The paper's methodological point (Section 7): SPN fetches
        fewer tuples than BTC yet does not win on page I/O."""
        graph = generate_dag(400, 5, 80, seed=24)
        system = SystemConfig(buffer_pages=10)
        spn = SpanningTreeAlgorithm().run(graph, system=system)
        btc = BtcAlgorithm().run(graph, system=system)
        assert spn.metrics.tuple_io <= btc.metrics.tuple_io
        assert spn.metrics.total_io >= btc.metrics.total_io

    def test_empty_and_sink_children(self):
        graph = Digraph.from_arcs(3, [(0, 1), (0, 2)])
        result = SpanningTreeAlgorithm().run(graph)
        assert result.successors_of(0) == [1, 2]
        assert result.metrics.list_unions == 2
