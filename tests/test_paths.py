"""Tests for generalized transitive closure (semiring path aggregation)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import SystemConfig
from repro.errors import ConfigurationError, CyclicGraphError, InvalidNodeError
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.paths import (
    BOOLEAN,
    MIN_PLUS,
    WeightedDigraph,
    bottleneck_capacities,
    critical_path_lengths,
    generalized_closure,
    path_counts,
    path_reliabilities,
    shortest_distances,
)


def weighted_random_dag(n: int, f: int, locality: int, seed: int) -> WeightedDigraph:
    import random

    graph = generate_dag(n, f, locality, seed=seed)
    rng = random.Random(seed + 1)
    labels = {arc: rng.randint(1, 10) for arc in graph.arcs()}
    return WeightedDigraph(graph, labels)


class TestWeightedDigraph:
    def test_from_labelled_arcs(self):
        weighted = WeightedDigraph.from_labelled_arcs(3, [(0, 1, 5), (1, 2, 7)])
        assert weighted.label(0, 1) == 5
        assert weighted.num_arcs == 2

    def test_uniform(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        weighted = WeightedDigraph.uniform(graph, label=3)
        assert weighted.label(1, 2) == 3

    def test_missing_label_rejected(self):
        graph = Digraph.from_arcs(2, [(0, 1)])
        with pytest.raises(InvalidNodeError):
            WeightedDigraph(graph, {})

    def test_label_for_missing_arc_rejected(self):
        graph = Digraph.from_arcs(2, [(0, 1)])
        with pytest.raises(InvalidNodeError):
            WeightedDigraph(graph, {(0, 1): 1, (1, 0): 1})

    def test_labelled_arcs_roundtrip(self):
        weighted = WeightedDigraph.from_labelled_arcs(3, [(0, 1, 5), (1, 2, 7)])
        assert sorted(weighted.labelled_arcs()) == [(0, 1, 5), (1, 2, 7)]


class TestShortestDistances:
    def test_simple_diamond(self):
        weighted = WeightedDigraph.from_labelled_arcs(
            4, [(0, 1, 1), (0, 2, 5), (1, 3, 1), (2, 3, 1), (0, 3, 10)]
        )
        closure = shortest_distances(weighted)
        assert closure.value(0, 3) == 2  # via 1, not the direct arc
        assert closure.value(0, 2) == 5
        assert closure.value(3, 0) == float("inf")

    def test_matches_networkx_dijkstra(self):
        weighted = weighted_random_dag(120, 3, 30, seed=5)
        closure = shortest_distances(weighted)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(weighted.num_nodes))
        for src, dst, label in weighted.labelled_arcs():
            nxg.add_edge(src, dst, weight=label)
        for source in (0, 40, 100):
            expected = nx.single_source_dijkstra_path_length(nxg, source)
            expected.pop(source)
            assert closure.values[source] == expected

    def test_selection(self):
        weighted = weighted_random_dag(100, 3, 25, seed=6)
        closure = shortest_distances(weighted, sources=[0, 10])
        assert set(closure.values) == {0, 10}

    @given(
        n=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_distances_respect_the_triangle_rule(self, n, seed):
        weighted = weighted_random_dag(n, 2, max(1, n // 2), seed=seed)
        closure = shortest_distances(weighted)
        for src, dst, label in weighted.labelled_arcs():
            assert closure.value(src, dst) <= label


class TestCriticalPaths:
    def test_longest_path(self):
        weighted = WeightedDigraph.from_labelled_arcs(
            4, [(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 5), (0, 3, 3)]
        )
        closure = critical_path_lengths(weighted)
        assert closure.value(0, 3) == 6  # via node 2

    def test_matches_networkx_dag_longest_path(self):
        weighted = weighted_random_dag(80, 3, 20, seed=7)
        closure = critical_path_lengths(weighted)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(weighted.num_nodes))
        for src, dst, label in weighted.labelled_arcs():
            nxg.add_edge(src, dst, weight=label)
        length = nx.dag_longest_path_length(nxg, weight="weight")
        measured = max(
            (value for row in closure.values.values() for value in row.values()),
            default=0,
        )
        assert measured == length


class TestBottleneck:
    def test_widest_path(self):
        weighted = WeightedDigraph.from_labelled_arcs(
            4, [(0, 1, 10), (1, 3, 2), (0, 2, 4), (2, 3, 4)]
        )
        closure = bottleneck_capacities(weighted)
        assert closure.value(0, 3) == 4  # min(4,4) beats min(10,2)


class TestReliability:
    def test_most_reliable_path(self):
        weighted = WeightedDigraph.from_labelled_arcs(
            3, [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.5)]
        )
        closure = path_reliabilities(weighted)
        assert closure.value(0, 2) == pytest.approx(0.81)

    def test_labels_outside_unit_interval_rejected(self):
        weighted = WeightedDigraph.from_labelled_arcs(2, [(0, 1, 1.5)])
        with pytest.raises(ConfigurationError):
            path_reliabilities(weighted)


class TestPathCounts:
    def test_diamond_has_two_paths(self, diamond):
        closure = path_counts(diamond)
        # 0->1->3, 0->2->3 and the direct arc 0->3.
        assert closure.value(0, 3) == 3

    def test_matches_dp_oracle(self):
        graph = generate_dag(60, 3, 15, seed=8)
        closure = path_counts(graph)
        # Dynamic-programming oracle over the topological order.
        from repro.graphs.toposort import topological_sort

        order = topological_sort(graph)
        for source in (0, 30):
            counts = {source: 1}
            for node in order:
                if node not in counts:
                    continue
                for child in graph.successors(node):
                    counts[child] = counts.get(child, 0) + counts[node]
            counts.pop(source)
            expected = {node: count for node, count in counts.items() if count}
            assert closure.values[source] == expected


class TestFrameworkBehaviour:
    def test_cyclic_input_raises(self):
        graph = Digraph.from_arcs(2, [(0, 1), (1, 0)])
        with pytest.raises(CyclicGraphError):
            shortest_distances(WeightedDigraph.uniform(graph, 1))

    def test_no_marking_every_arc_unions(self, medium_dag):
        closure = path_counts(medium_dag)
        assert closure.metrics.arcs_considered == medium_dag.num_arcs
        assert closure.metrics.list_unions == medium_dag.num_arcs
        assert closure.metrics.arcs_marked == 0

    def test_boolean_semiring_reduces_to_reachability(self, medium_dag):
        from repro.core.registry import make_algorithm

        weighted = WeightedDigraph.uniform(medium_dag, label=True)
        closure = generalized_closure(weighted, BOOLEAN)
        reference = make_algorithm("btc").run(medium_dag)
        for node in medium_dag.nodes():
            assert set(closure.values[node]) == set(reference.successors_of(node))

    def test_costs_more_than_boolean_closure(self):
        """No marking and double-width entries: the generalized closure
        pays more page I/O than the boolean one on the same graph."""
        graph = generate_dag(400, 5, 80, seed=9)
        from repro.core.registry import make_algorithm

        system = SystemConfig(buffer_pages=10)
        boolean_io = make_algorithm("btc").run(graph, system=system).metrics.total_io
        weighted = WeightedDigraph.uniform(graph, label=1)
        general_io = shortest_distances(weighted, system=system).metrics.total_io
        assert general_io > boolean_io

    def test_metrics_accounting(self, small_dag):
        closure = path_counts(small_dag)
        metrics = closure.metrics
        assert metrics.io.total_requests == metrics.io.total_hits + metrics.io.total_reads
        assert metrics.distinct_tuples == sum(
            len(row) for row in closure.values.values()
        )
