"""Tests for the command line front end."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.compare import load_records


class TestCli:
    def test_default_run(self, capsys):
        assert main(["--nodes", "100", "--out-degree", "3", "--locality", "20"]) == 0
        output = capsys.readouterr().out
        assert "btc" in output
        assert "total_io" in output

    def test_family_workload(self, capsys):
        assert main(["--family", "G3", "--scale", "8", "--algorithm", "bj",
                     "--sources", "4"]) == 0
        output = capsys.readouterr().out
        assert "bj" in output
        assert "n=250" in output

    def test_all_algorithms_on_a_selection(self, capsys):
        assert main(["--family", "G2", "--scale", "8", "--algorithm", "all",
                     "--sources", "3", "-M", "10"]) == 0
        output = capsys.readouterr().out
        for name in ("btc", "hyb", "bj", "srch", "spn", "jkb", "jkb2",
                     "seminaive", "warren", "schmitz"):
            assert name in output

    def test_all_skips_srch_for_full_closure(self, capsys):
        assert main(["--nodes", "60", "--algorithm", "all"]) == 0
        output = capsys.readouterr().out
        assert "srch" not in output.replace("search", "")

    def test_baseline_by_name(self, capsys):
        assert main(["--nodes", "80", "--algorithm", "warshall"]) == 0
        assert "warshall" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["--algorithm", "made-up"])

    def test_buffer_and_policy_flags(self, capsys):
        assert main(["--nodes", "80", "-M", "5", "--page-policy", "clock"]) == 0
        assert "M=5" in capsys.readouterr().out

    def test_quiet_suppresses_banner_keeps_table(self, capsys):
        assert main(["--nodes", "80", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "graph:" not in output
        assert "total_io" in output

    def test_bad_workload_exits_nonzero_without_traceback(self, capsys):
        assert main(["--family", "G99"]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_jobs_table_matches_serial(self, capsys):
        """--jobs fans out across processes; the result table (only
        cpu_s, a measured field, excepted) matches the serial run."""

        def table(argv):
            assert main(argv) == 0
            rows = [line for line in capsys.readouterr().out.splitlines()
                    if line and "graph:" not in line]
            # Drop the trailing cpu_s column: measured, not simulated.
            return [line.rsplit(None, 1)[0] for line in rows]

        base = ["--family", "G2", "--scale", "8", "--algorithm", "all",
                "--sources", "3", "-M", "10", "--quiet"]
        assert table(base) == table(base + ["--jobs", "3"])

    def test_jobs_with_emit_json_writes_records(self, tmp_path, capsys):
        path = tmp_path / "records.jsonl"
        assert main(["--family", "G2", "--scale", "8", "--algorithm", "btc",
                     "--sources", "3", "--jobs", "2", "--emit-json", str(path),
                     "--quiet"]) == 0
        capsys.readouterr()
        records = load_records(path)
        assert len(records) == 1
        assert records[0].algorithm == "btc"
        assert records[0].workload["family"] == "G2"

    def test_algorithm_failure_exits_nonzero(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(name):
            raise RuntimeError("simulated failure")

        monkeypatch.setattr(cli, "make_algorithm", boom)
        assert main(["--nodes", "60"]) == 1
        assert "simulated failure" in capsys.readouterr().err


class TestEmitJson:
    def test_emit_json_writes_run_records(self, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        assert main(["--algorithm", "btc", "--family", "G4", "--scale", "4",
                     "--emit-json", str(out), "--quiet"]) == 0
        (record,) = load_records(out)
        assert record.algorithm == "btc"
        assert record.workload == {"family": "G4", "scale": 4, "seed": 0}
        assert record.system["buffer_pages"] == 20
        # Per-phase I/O, span durations and config are all present.
        phases = record.metrics["io"]["reads_by_phase"]
        assert set(phases) == {"restructure", "compute", "writeout"}
        assert record.spans["run"]["count"] == 1
        assert record.spans["run"]["total_seconds"] > 0

    def test_emit_json_all_algorithms(self, tmp_path, capsys):
        out = tmp_path / "all.jsonl"
        assert main(["--algorithm", "all", "--family", "G2", "--scale", "8",
                     "--sources", "2", "--emit-json", str(out), "--quiet"]) == 0
        records = load_records(out)
        assert len(records) >= 10  # the suite plus the baselines
        assert len({r.algorithm for r in records}) == len(records)

    def test_emit_json_overrides_env_toggle(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        out = tmp_path / "out.jsonl"
        assert main(["--algorithm", "btc", "--nodes", "80",
                     "--emit-json", str(out), "--quiet"]) == 0
        assert len(load_records(out)) == 1  # explicit flag beats the env var

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.obs.tracing import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["--algorithm", "btc", "--nodes", "80",
                     "--trace-out", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "process_name" in names  # section metadata
        assert any(name.startswith("page.") for name in names)

    def test_reps_emit_one_record_per_repetition(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(["--algorithm", "btc", "--nodes", "80", "--quiet",
                     "--reps", "3", "--emit-json", str(path)]) == 0
        records = load_records(str(path))
        assert len(records) == 3
        assert len({r.total_io for r in records}) == 1


class TestProfileCommand:
    def test_profile_prints_buffer_profile(self, capsys):
        assert main(["profile", "--algorithm", "btc", "--nodes", "100",
                     "--sources", "3"]) == 0
        output = capsys.readouterr().out
        assert "hit-ratio timeline" in output
        assert "page requests by kind" in output
        assert "hottest pages" in output
        assert "span timings" in output


class TestCompareCommand:
    def _emit(self, tmp_path, name, scale="8"):
        path = tmp_path / name
        assert main(["--algorithm", "btc", "--family", "G2", "--scale", scale,
                     "--emit-json", str(path), "--quiet"]) == 0
        return path

    def test_identical_files_pass(self, tmp_path, capsys):
        baseline = self._emit(tmp_path, "base.jsonl")
        candidate = self._emit(tmp_path, "cand.jsonl")
        assert main(["compare", str(baseline), str(candidate)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_io_regression_fails_the_gate(self, tmp_path, capsys):
        candidate = self._emit(tmp_path, "cand.jsonl")
        record = json.loads(candidate.read_text())
        record["metrics"]["total_io"] = int(record["metrics"]["total_io"] * 0.8)
        baseline = tmp_path / "base.jsonl"
        baseline.write_text(json.dumps(record) + "\n")
        assert main(["compare", str(baseline), str(candidate)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_threshold_is_configurable(self, tmp_path, capsys):
        candidate = self._emit(tmp_path, "cand.jsonl")
        record = json.loads(candidate.read_text())
        record["metrics"]["total_io"] = int(record["metrics"]["total_io"] * 0.9)
        baseline = tmp_path / "base.jsonl"
        baseline.write_text(json.dumps(record) + "\n")
        assert main(["compare", str(baseline), str(candidate),
                     "--threshold", "0.5"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestChainsProbes:
    WORKLOAD = ["chains", "--nodes", "150", "--seed", "3", "--queries", "10",
                "--engine", "fast", "-q"]

    def test_valid_probes_are_answered_and_verified(self, capsys):
        assert main([*self.WORKLOAD, "--probe", "0:100", "--probe", "5:6"]) == 0
        output = capsys.readouterr().out
        assert "probe reachable(0, 100)" in output
        assert "verified=ok" in output

    def test_out_of_range_probe_exits_two_with_message(self, capsys):
        assert main([*self.WORKLOAD, "--probe", "0:9999"]) == 2
        err = capsys.readouterr().err
        assert "outside the graph's range 0..149" in err
        assert "Traceback" not in err

    def test_malformed_probe_exits_two_with_message(self, capsys):
        assert main([*self.WORKLOAD, "--probe", "abc"]) == 2
        err = capsys.readouterr().err
        assert "expected 'U:V'" in err
        assert "Traceback" not in err


class TestIngestCommand:
    FIXTURES = Path(__file__).parent / "fixtures" / "ingest"

    def test_stats_on_checked_in_fixture(self, capsys):
        assert main(["ingest", str(self.FIXTURES / "tiny.snap"), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "duplicate_arcs: 1" in out
        assert "self_loops: 1" in out
        assert "nodes=6 arcs=5" in out

    def test_build_index_verifies_probes_on_both_engines(self, capsys):
        path = str(self.FIXTURES / "braid_small.snap.gz")
        for engine in ("fast", "paged"):
            code = main(["ingest", path, "--build-index", "--engine", engine,
                         "--probes", "50", "-q"])
            assert code == 0
            out = capsys.readouterr().out
            assert "verified=ok" in out
            assert "k=" in out

    def test_emit_json_payload(self, tmp_path, capsys):
        out_file = tmp_path / "ingest.json"
        code = main(["ingest", str(self.FIXTURES / "tiny.snap"),
                     "--build-index", "--engine", "fast",
                     "--emit-json", str(out_file), "-q"])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["stats"]["nodes"] == 6
        assert payload["index"]["probe_failures"] == 0
        assert payload["peak_rss_mb"] > 0

    def test_missing_file_exits_one_without_traceback(self, capsys):
        assert main(["ingest", "does-not-exist.snap"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_malformed_file_exits_one_with_line_number(self, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_text("0 1\noops\n")
        assert main(["ingest", str(bad)]) == 1
        assert "line 2" in capsys.readouterr().err


class TestServeCommand:
    WORKLOAD = ["serve", "--nodes", "150", "--seed", "3", "--engine", "fast"]

    def test_self_check_passes_on_both_engines(self, capsys):
        assert main([*self.WORKLOAD, "--self-check", "40"]) == 0
        assert main(["serve", "--nodes", "150", "--seed", "3",
                     "--engine", "paged", "--self-check", "40"]) == 0
        output = capsys.readouterr().out
        assert "wrong=0" in output
        assert "healthz=ok" in output and "readyz=ok" in output

    def test_probe_mode_answers_directly(self, capsys):
        assert main([*self.WORKLOAD, "--probe", "0:100"]) == 0
        assert "verified=ok" in capsys.readouterr().out

    def test_invalid_probe_exits_two(self, capsys):
        assert main([*self.WORKLOAD, "--probe", "0:9999"]) == 2
        assert "outside the graph's range" in capsys.readouterr().err

    def test_self_check_emits_serve_run_record(self, tmp_path, capsys):
        out = tmp_path / "serve.jsonl"
        assert main([*self.WORKLOAD, "--self-check", "20",
                     "--emit-json", str(out)]) == 0
        record = json.loads(out.read_text())
        assert record["algorithm"] == "serve"
        assert record["metrics"]["answered"] >= 20
        assert "latency_p99_ms" in record["metrics"]

    def test_bad_serve_config_exits_one(self, capsys):
        assert main([*self.WORKLOAD, "--deadline-ms", "-5",
                     "--self-check", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_probe_mode_emits_serve_run_record(self, tmp_path, capsys):
        """Regression: the run record survives the RPL009 fix.

        Emission moved out of the async probe handler (JsonlSink fsyncs
        every record -- a blocking call on the event loop) to after
        ``asyncio.run`` returns; the record itself must still be
        written in probe mode.
        """
        out = tmp_path / "serve-probe.jsonl"
        assert main([*self.WORKLOAD, "--probe", "0:100",
                     "--emit-json", str(out)]) == 0
        record = json.loads(out.read_text())
        assert record["algorithm"] == "serve"
        assert "latency_p99_ms" in record["metrics"]
