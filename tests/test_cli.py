"""Tests for the command line front end."""

import pytest

from repro.cli import main


class TestCli:
    def test_default_run(self, capsys):
        assert main(["--nodes", "100", "--out-degree", "3", "--locality", "20"]) == 0
        output = capsys.readouterr().out
        assert "btc" in output
        assert "total_io" in output

    def test_family_workload(self, capsys):
        assert main(["--family", "G3", "--scale", "8", "--algorithm", "bj",
                     "--sources", "4"]) == 0
        output = capsys.readouterr().out
        assert "bj" in output
        assert "n=250" in output

    def test_all_algorithms_on_a_selection(self, capsys):
        assert main(["--family", "G2", "--scale", "8", "--algorithm", "all",
                     "--sources", "3", "-M", "10"]) == 0
        output = capsys.readouterr().out
        for name in ("btc", "hyb", "bj", "srch", "spn", "jkb", "jkb2",
                     "seminaive", "warren", "schmitz"):
            assert name in output

    def test_all_skips_srch_for_full_closure(self, capsys):
        assert main(["--nodes", "60", "--algorithm", "all"]) == 0
        output = capsys.readouterr().out
        assert "srch" not in output.replace("search", "")

    def test_baseline_by_name(self, capsys):
        assert main(["--nodes", "80", "--algorithm", "warshall"]) == 0
        assert "warshall" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["--algorithm", "made-up"])

    def test_buffer_and_policy_flags(self, capsys):
        assert main(["--nodes", "80", "-M", "5", "--page-policy", "clock"]) == 0
        assert "M=5" in capsys.readouterr().out
