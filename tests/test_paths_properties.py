"""Property-based tests for the generalized closure's algebra.

These pin down the semantics independent of any oracle: semiring
axioms for the provided instances, and structural laws of the closure
itself (boolean consistency, label-scaling equivariance, monotonicity
under arc insertion).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generator import generate_dag
from repro.paths import (
    BOOLEAN,
    COUNT,
    MAX_MIN,
    MAX_PLUS,
    MAX_PROB,
    MIN_PLUS,
    WeightedDigraph,
    generalized_closure,
    shortest_distances,
)

ALL_SEMIRINGS = (BOOLEAN, MIN_PLUS, MAX_PLUS, MAX_MIN, MAX_PROB, COUNT)


def domain_values(semiring):
    """A hypothesis strategy over sensible values for each semiring."""
    if semiring is BOOLEAN:
        return st.booleans()
    if semiring is MAX_PROB:
        return st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    if semiring is COUNT:
        return st.integers(min_value=0, max_value=50)
    return st.integers(min_value=-20, max_value=20)


class TestSemiringAxioms:
    @given(data=st.data(), semiring=st.sampled_from(ALL_SEMIRINGS))
    @settings(max_examples=60, deadline=None)
    def test_plus_is_commutative_and_associative_with_zero(self, data, semiring):
        values = domain_values(semiring)
        a, b, c = data.draw(values), data.draw(values), data.draw(values)
        plus = semiring.plus
        assert plus(a, b) == plus(b, a)
        assert plus(plus(a, b), c) == plus(a, plus(b, c))
        assert plus(a, semiring.zero) == a

    @given(data=st.data(), semiring=st.sampled_from(ALL_SEMIRINGS))
    @settings(max_examples=60, deadline=None)
    def test_times_has_identity_and_annihilator(self, data, semiring):
        a = data.draw(domain_values(semiring))
        times = semiring.times
        assert times(semiring.one, a) == a
        assert times(a, semiring.one) == a
        assert times(semiring.zero, a) == semiring.zero

    @given(data=st.data(), semiring=st.sampled_from(ALL_SEMIRINGS))
    @settings(max_examples=60, deadline=None)
    def test_times_distributes_over_plus(self, data, semiring):
        values = domain_values(semiring)
        a, b, c = data.draw(values), data.draw(values), data.draw(values)
        plus, times = semiring.plus, semiring.times
        left = times(a, plus(b, c))
        right = plus(times(a, b), times(a, c))
        if semiring is MAX_PROB:
            assert abs(left - right) < 1e-9
        else:
            assert left == right

    @given(data=st.data(), semiring=st.sampled_from(ALL_SEMIRINGS))
    @settings(max_examples=40, deadline=None)
    def test_idempotence_flag_is_truthful(self, data, semiring):
        a = data.draw(domain_values(semiring))
        if semiring.idempotent_plus:
            assert semiring.plus(a, a) == a


def weighted_case(n: int, seed: int) -> WeightedDigraph:
    graph = generate_dag(n, 2, max(1, n // 2), seed=seed)
    rng = random.Random(seed)
    return WeightedDigraph(graph, {arc: rng.randint(1, 9) for arc in graph.arcs()})


class TestClosureLaws:
    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=3_000),
        semiring=st.sampled_from((MIN_PLUS, MAX_PLUS, MAX_MIN, COUNT)),
    )
    @settings(max_examples=25, deadline=None)
    def test_support_equals_reachability(self, n, seed, semiring):
        """Whatever the semiring, a pair has a non-zero aggregate iff
        it is reachable (boolean consistency)."""
        weighted = weighted_case(n, seed)
        closure = generalized_closure(weighted, semiring)
        boolean = generalized_closure(
            WeightedDigraph.uniform(weighted.graph, True), BOOLEAN
        )
        for node in range(n):
            assert set(closure.values[node]) == set(boolean.values[node])

    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=3_000),
        factor=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_min_plus_scales_with_the_labels(self, n, seed, factor):
        """Multiplying every label by k multiplies every distance by k."""
        weighted = weighted_case(n, seed)
        scaled = WeightedDigraph(
            weighted.graph,
            {(s, d): factor * label for s, d, label in weighted.labelled_arcs()},
        )
        base = shortest_distances(weighted)
        big = shortest_distances(scaled)
        for node in range(n):
            for successor, value in base.values[node].items():
                assert big.values[node][successor] == factor * value

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_adding_an_arc_never_increases_distances(self, n, seed):
        """min-plus aggregates are monotone under arc insertion."""
        weighted = weighted_case(n, seed)
        base = shortest_distances(weighted)

        # Insert one new forward arc (keeping the graph acyclic).
        rng = random.Random(seed + 7)
        src = rng.randrange(n - 1)
        dst = rng.randrange(src + 1, n)
        arcs = list(weighted.labelled_arcs())
        if not weighted.graph.has_arc(src, dst):
            arcs.append((src, dst, rng.randint(1, 9)))
        bigger = WeightedDigraph.from_labelled_arcs(n, arcs)
        richer = shortest_distances(bigger)
        for node in range(n):
            for successor, value in base.values[node].items():
                assert richer.values[node][successor] <= value
