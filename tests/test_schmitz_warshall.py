"""Tests for the Schmitz and Warshall baselines."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.schmitz import SchmitzAlgorithm
from repro.baselines.warren import WarrenAlgorithm
from repro.baselines.warshall import WarshallAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


def cyclic_oracle(graph: Digraph) -> dict[int, set[int]]:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(graph.arcs())
    closure = {}
    for node in nxg.nodes:
        reached = set(nx.descendants(nxg, node))
        if nxg.has_edge(node, node) or any(
            node in nx.descendants(nxg, child) for child in nxg.successors(node)
        ):
            reached.add(node)
        closure[node] = reached
    return closure


def random_cyclic(n: int, arcs: int, seed: int) -> Digraph:
    rng = random.Random(seed)
    return Digraph.from_arcs(
        n, [(rng.randrange(n), rng.randrange(n)) for _ in range(arcs)]
    )


class TestSchmitz:
    def test_dag_closure_matches_oracle(self, medium_dag):
        result = SchmitzAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_traverses_only_the_magic_graph(self, medium_dag):
        sources = [0, 70]
        result = SchmitzAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cyclic_closure_matches_oracle(self, n, seed):
        graph = random_cyclic(n, 3 * n, seed)
        result = SchmitzAlgorithm().run(graph)
        oracle = cyclic_oracle(graph)
        for node in range(n):
            assert set(result.successors_of(node)) == oracle[node], node

    def test_members_of_a_component_share_their_set(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 0), (1, 2), (2, 3)])
        result = SchmitzAlgorithm().run(graph)
        assert set(result.successors_of(0)) == set(result.successors_of(1))
        assert 0 in result.successors_of(0)  # cycle membership

    def test_one_union_per_distinct_target_component(self, chain):
        result = SchmitzAlgorithm().run(chain)
        # On a path every node has one child in another component.
        assert result.metrics.list_unions == 5


class TestWarshall:
    def test_matches_warren_and_btc(self, small_dag):
        warshall = WarshallAlgorithm().run(small_dag)
        warren = WarrenAlgorithm().run(small_dag)
        btc = make_algorithm("btc").run(small_dag)
        assert warshall.successor_bits == warren.successor_bits == btc.successor_bits

    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cyclic_closure_matches_oracle(self, n, seed):
        graph = random_cyclic(n, 3 * n, seed)
        result = WarshallAlgorithm().run(graph)
        oracle = cyclic_oracle(graph)
        for node in range(n):
            assert set(result.successors_of(node)) == oracle[node], node

    def test_warren_beats_warshall_on_page_io(self):
        """Warren's reformulation targets Warshall's access pattern:
        the two row-major passes cost markedly less page I/O when the
        matrix exceeds the buffer pool, even though they may perform
        slightly *more* row unions."""
        graph = generate_dag(600, 4, 150, seed=63)
        system = SystemConfig(buffer_pages=10)
        warshall = WarshallAlgorithm().run(graph, system=system).metrics
        warren = WarrenAlgorithm().run(graph, system=system).metrics
        assert warren.total_io < warshall.total_io

    def test_selection_is_still_a_full_computation(self, small_dag):
        """Matrix algorithms cannot exploit selectivity (Section 8)."""
        full = WarshallAlgorithm().run(small_dag).metrics.total_io
        selected = WarshallAlgorithm().run(small_dag, Query.ptc([0])).metrics.total_io
        assert selected >= full * 0.5
