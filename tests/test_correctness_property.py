"""Property-based correctness: every algorithm against the oracle.

These are the load-bearing tests of the reproduction: whatever random
DAG, query and buffer size hypothesis draws, every algorithm in the
suite must produce exactly the reachability relation networkx computes.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.generator import generate_dag

FULL_CLOSURE_ALGOS = tuple(name for name in ALGORITHM_NAMES if name != "srch")


@st.composite
def dag_and_sources(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    f = draw(st.integers(min_value=0, max_value=6))
    locality = draw(st.integers(min_value=1, max_value=max(1, n)))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    graph = generate_dag(n, f, locality, seed=seed)
    k = draw(st.integers(min_value=1, max_value=min(6, n)))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    buffer_pages = draw(st.sampled_from([3, 10, 20]))
    return graph, sources, buffer_pages


def oracle(graph):
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(graph.arcs())
    return {node: set(nx.descendants(nxg, node)) for node in nxg.nodes}


class TestPartialClosure:
    @given(dag_and_sources())
    @settings(max_examples=30, deadline=None)
    def test_every_algorithm_answers_selections_correctly(self, case):
        graph, sources, buffer_pages = case
        expected = oracle(graph)
        query = Query.ptc(sources)
        system = SystemConfig(buffer_pages=buffer_pages)
        for name in ALGORITHM_NAMES:
            result = make_algorithm(name).run(graph, query, system)
            assert set(result.successor_bits) == set(query.sources), name
            for source in query.sources:
                assert set(result.successors_of(source)) == expected[source], (
                    name,
                    source,
                )


class TestFullClosure:
    @given(dag_and_sources())
    @settings(max_examples=20, deadline=None)
    def test_every_algorithm_computes_full_closures_correctly(self, case):
        graph, _sources, buffer_pages = case
        expected = oracle(graph)
        system = SystemConfig(buffer_pages=buffer_pages)
        for name in FULL_CLOSURE_ALGOS:
            result = make_algorithm(name).run(graph, Query.full(), system)
            for node in graph.nodes():
                assert set(result.successors_of(node)) == expected[node], (name, node)

    @given(dag_and_sources())
    @settings(max_examples=15, deadline=None)
    def test_selecting_every_node_equals_the_full_closure(self, case):
        """A PTC over all nodes must coincide with the CTC (the
        convergence point of Figure 14)."""
        graph, _sources, buffer_pages = case
        system = SystemConfig(buffer_pages=buffer_pages)
        all_nodes = Query.ptc(range(graph.num_nodes))
        full = make_algorithm("btc").run(graph, Query.full(), system)
        for name in ("btc", "bj", "jkb2"):
            partial = make_algorithm(name).run(graph, all_nodes, system)
            assert partial.successor_bits == full.successor_bits, name


class TestCrossAlgorithmAgreement:
    @given(dag_and_sources())
    @settings(max_examples=20, deadline=None)
    def test_all_algorithms_agree_with_each_other(self, case):
        """Agreement is implied by oracle equality, but this variant
        catches divergence even if the oracle itself were wrong."""
        graph, sources, buffer_pages = case
        query = Query.ptc(sources)
        system = SystemConfig(buffer_pages=buffer_pages)
        answers = {
            name: make_algorithm(name).run(graph, query, system).successor_bits
            for name in ALGORITHM_NAMES
        }
        reference = answers["btc"]
        for name, bits in answers.items():
            assert bits == reference, name
