"""Degraded-buffer-pool battery: tiny pools never crash the suite.

The paper's experiments run down to a 10-page pool (Section 5.1).  The
contract tested here is stronger: at *any* pool size -- including a
single page, below what one successor-list operation may need -- every
algorithm either completes with the correct closure or fails with a
structured :class:`~repro.errors.ReproError` (Hybrid's dynamic
reblocking legitimately gives up on pools it cannot reblock into).
An unstructured crash (KeyError, RecursionError, ...) is a bug.
"""

import pytest

from repro.chaos.audit import set_audit_mode
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.errors import ReproError

from conftest import oracle_closure


@pytest.fixture(autouse=True)
def strict_audit():
    """The battery doubles as an invariant stress test."""
    set_audit_mode("strict")
    yield
    set_audit_mode(None)


def _check(algorithm_name, graph, buffer_pages, query=None):
    query = query or Query.full()
    system = SystemConfig(buffer_pages=buffer_pages)
    try:
        result = make_algorithm(algorithm_name).run(graph, query, system)
    except ReproError:
        return  # a structured refusal is an acceptable outcome
    oracle = oracle_closure(graph)
    for node in result.successor_bits:
        assert set(result.successors_of(node)) == oracle[node], (
            f"{algorithm_name} wrong at M={buffer_pages}"
        )


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@pytest.mark.parametrize("buffer_pages", [1, 3, 10])
class TestDegradedPools:
    def test_full_closure(self, name, buffer_pages, small_dag):
        _check(name, small_dag, buffer_pages)

    def test_selection_query(self, name, buffer_pages, small_dag):
        _check(name, small_dag, buffer_pages, Query.ptc([0, 5, 11]))


def test_paper_floor_runs_everything(small_dag):
    """At the paper's 10-page floor every algorithm must *succeed*."""
    for name in ALGORITHM_NAMES:
        if name == "srch":
            result = make_algorithm(name).run(
                small_dag, Query.ptc([0]), SystemConfig(buffer_pages=10)
            )
        else:
            result = make_algorithm(name).run(
                small_dag, Query.full(), SystemConfig(buffer_pages=10)
            )
        assert result.metrics.total_io > 0
