"""Engine event tracing, Chrome export, reports, and the noise gate.

The trace goldens pin the *event stream* of BTC and Hybrid on the
figure-6 smoke workload (the same graph the counter goldens use): the
per-event-name counts plus the first and last event identities.  A
drifting golden means the storage emit sites changed behaviour -- the
same contract the counter goldens enforce, one layer deeper.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.errors import EngineCapabilityError
from repro.graphs.datasets import build_graph
from repro.obs.bench import build_bench_summary, set_bench_reps
from repro.obs.compare import MetricGate, compare_runs
from repro.obs.heatmap import page_heatmap, residency_timeline
from repro.obs.record import SUPPORTED_SCHEMA_VERSIONS, RunRecord
from repro.obs.sink import JsonlSink, MemorySink, set_global_sink
from repro.obs.spans import SpanRecorder
from repro.obs.tracing import (
    EVENT_NAMES,
    TraceCollector,
    chrome_trace,
    events_from_chrome,
    validate_chrome_trace,
)
from repro.storage.engine import make_engine

GOLDEN = json.loads(
    (Path(__file__).parent / "goldens" / "trace_events.json").read_text()
)

SYSTEM = SystemConfig(buffer_pages=10)


def _graph():
    spec = GOLDEN["workload"]
    return build_graph(spec["family"], seed=spec["seed"], scale=spec["scale"])


def _traced_run(name, graph):
    collector = TraceCollector(label=name)
    recorder = SpanRecorder(collector=collector)
    result = make_algorithm(name).run(
        graph, Query.full(), SYSTEM, recorder=recorder, collector=collector
    )
    return result, collector


class TestTraceGoldens:
    @pytest.mark.parametrize("name", ["btc", "hyb"])
    def test_event_stream_matches_golden(self, name):
        golden = GOLDEN["algorithms"][name]
        _, collector = _traced_run(name, _graph())
        events = collector.events
        assert collector.dropped == 0
        assert len(events) == golden["total_events"]
        assert dict(collector.counts()) == golden["counts"]
        assert list(events[0].identity()) == golden["first"]
        assert list(events[-1].identity()) == golden["last"]

    def test_all_emitted_names_are_vocabulary(self):
        _, collector = _traced_run("hyb", _graph())
        assert {e.name for e in collector.events} <= EVENT_NAMES


class TestZeroOverheadContract:
    def test_counters_byte_identical_with_tracing_on_and_off(self):
        graph = _graph()

        def counters(collector):
            result = make_algorithm("btc").run(
                graph, Query.full(), SYSTEM, collector=collector
            )
            record = RunRecord.from_result(result, workload={"w": 1}).to_dict()
            # Timings are measured, everything else is simulated.
            record["metrics"].pop("cpu_seconds")
            record["metrics"].pop("restructure_cpu_seconds")
            record.pop("wall_seconds")
            record.pop("schema_version")
            return record

        off = counters(None)
        on = counters(TraceCollector())
        assert json.dumps(off, sort_keys=True) == json.dumps(on, sort_keys=True)

    def test_fast_engine_refuses_a_collector(self):
        from repro.metrics.counters import MetricSet

        with pytest.raises(EngineCapabilityError, match="trace"):
            make_engine(SystemConfig(engine="fast"), _graph(),
                        metrics=MetricSet(), collector=TraceCollector())

    def test_cli_trace_out_on_fast_engine_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["--algorithm", "btc", "--nodes", "60", "--engine", "fast",
                     "--trace-out", str(out), "--quiet"]) == 1
        assert "EngineCapabilityError" in capsys.readouterr().err
        assert not out.exists()


class TestCollector:
    def test_ring_buffer_drops_oldest(self):
        collector = TraceCollector(capacity=3)
        for page in range(5):
            collector.emit("page.hit", "relation", page)
        assert len(collector) == 3
        assert collector.dropped == 2
        assert [e.page for e in collector.events] == [2, 3, 4]

    def test_phase_travels_with_events(self):
        collector = TraceCollector()
        collector.emit("page.hit", "relation", 1)
        collector.phase = "compute"
        collector.emit("page.hit", "relation", 2)
        phases = [e.phase for e in collector.events]
        assert phases == ["", "compute"]


class TestChromeExport:
    def _sections(self):
        collector = TraceCollector(label="demo")
        collector.span_begin("run")
        collector.emit("page.fetch", "relation", 3, detail="x")
        collector.phase = "compute"
        collector.emit("delta.spool", "delta", 7, detail="pages=1 tuples=2")
        collector.span_end("run")
        return [("demo", collector.events)]

    def test_trace_is_valid_and_roundtrips(self):
        sections = self._sections()
        payload = chrome_trace(sections)
        assert validate_chrome_trace(payload) == []
        restored = events_from_chrome(payload)
        assert [(label, [e.identity() for e in events])
                for label, events in restored] == \
               [(label, [e.identity() for e in events])
                for label, events in sections]

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
        unbalanced = {"traceEvents": [
            {"name": "run", "ph": "B", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("never closed" in p for p in validate_chrome_trace(unbalanced))

    def test_cli_serial_and_parallel_traces_match(self, tmp_path):
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        base = ["--algorithm", "all", "--nodes", "60", "-M", "10", "--quiet"]
        assert main([*base, "--trace-out", str(serial)]) == 0
        assert main([*base, "--trace-out", str(parallel), "--jobs", "4"]) == 0

        def identities(path):
            sections = events_from_chrome(json.loads(path.read_text()))
            return [(label, [e.identity() for e in events])
                    for label, events in sections]

        assert identities(serial) == identities(parallel)

    def test_cli_trace_out_writes_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["--algorithm", "btc", "--nodes", "80",
                     "--trace-out", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert main(["obs", "validate-trace", str(path)]) == 0

    def test_obs_validate_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert main(["obs", "validate-trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestHeatmapAggregation:
    def test_heatmap_conserves_touches(self):
        _, collector = _traced_run("btc", _graph())
        grid = page_heatmap(collector.events)
        assert grid["rows"]
        assert grid["touches"] == sum(
            sum(row["counts"]) for row in grid["rows"]
        )

    def test_residency_never_exceeds_pool_size(self):
        _, collector = _traced_run("btc", _graph())
        timeline = residency_timeline(collector.events)
        assert 0 < timeline["peak_resident"] <= SYSTEM.buffer_pages


class TestHtmlReport:
    def test_report_is_self_contained_with_three_panels(self, tmp_path, capsys):
        records, trace = tmp_path / "r.jsonl", tmp_path / "t.json"
        assert main(["--algorithm", "btc", "--nodes", "80", "--quiet",
                     "--emit-json", str(records), "--trace-out", str(trace)]) == 0
        out = tmp_path / "report.html"
        assert main(["obs", "report", "--records", str(records),
                     "--trace", str(trace), "--out", str(out)]) == 0
        html = out.read_text()
        assert html.count("class='panel'") >= 3
        assert "Phase waterfall" in html
        assert "Page heatmap" in html
        assert "BENCH trajectory" in html
        assert "Pool residency" in html
        # Self-contained: no external fetches of any kind.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_report_errors_exit_two(self, tmp_path, capsys):
        assert main(["obs", "report", "--records",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSchemaVersioning:
    def _record(self):
        result = make_algorithm("btc").run(
            build_graph("G9", seed=0, scale=8), Query.full(), SYSTEM
        )
        return RunRecord.from_result(result, workload={"family": "G9"})

    def test_trace_key_omitted_when_absent(self):
        data = self._record().to_dict()
        assert "trace" not in data
        assert data["schema_version"] == 2

    def test_v1_records_still_load(self):
        data = self._record().to_dict()
        data["schema_version"] = 1
        data["trace"] = None
        record = RunRecord.from_dict(data)
        assert record.algorithm == "btc"

    def test_unsupported_version_raises(self):
        data = self._record().to_dict()
        data["schema_version"] = max(SUPPORTED_SCHEMA_VERSIONS) + 1
        with pytest.raises(ValueError, match="schema version"):
            RunRecord.from_dict(data)


class TestBatchedSink:
    def test_flush_every_batches_but_loses_nothing_on_close(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path, enabled=True, flush_every=3)
        record = self._record()
        for _ in range(5):
            sink.emit(record)
        sink.close()
        assert len(path.read_text().splitlines()) == 5

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "x.jsonl", enabled=True, flush_every=0)

    def _record(self):
        result = make_algorithm("btc").run(
            build_graph("G9", seed=0, scale=16), Query.full(), SYSTEM
        )
        return RunRecord.from_result(result, workload={"family": "G9"})


class TestRepsAndNoiseGate:
    def _records(self, reps):
        sink = MemorySink()
        previous_sink = set_global_sink(sink)
        previous_reps = set_bench_reps(reps)
        try:
            from repro.experiments.queries import QuerySpec
            from repro.experiments.runner import run_single

            run_single("btc", build_graph("G9", seed=0, scale=8),
                       QuerySpec.full(), SYSTEM,
                       workload={"family": "G9", "scale": 8})
        finally:
            set_bench_reps(previous_reps)
            set_global_sink(previous_sink)
        return sink.records

    def test_reps_emit_one_record_each(self):
        records = self._records(3)
        assert len(records) == 3
        assert len({r.total_io for r in records}) == 1  # deterministic

    def test_bench_summary_keeps_all_samples_min_of_n(self):
        records = self._records(3)
        (entry,) = build_bench_summary(records)
        assert entry["runs"] == 3
        assert len(entry["wall_samples"]) == 3
        assert entry["wall_seconds"] == min(entry["wall_samples"])

    def test_identical_reps_pass_the_gate_with_wall_gating(self):
        records = self._records(3)
        report = compare_runs(records, records, wall_threshold=0.05)
        assert report.ok
        metrics = {d.metric for d in report.deltas}
        assert metrics == {"total_io", "cpu_seconds", "wall_seconds"}

    def test_doubled_total_io_fails_the_exact_gate(self):
        baseline = self._records(3)
        candidate = [RunRecord.from_dict(r.to_dict()) for r in baseline]
        for record in candidate:
            record.metrics["total_io"] = 2 * record.metrics["total_io"]
        report = compare_runs(baseline, candidate, threshold=0.0)
        assert not report.ok
        assert [d.metric for d in report.regressions] == ["total_io"]

    def test_noise_band_absorbs_jitter_within_sigma(self):
        gate = MetricGate("wall_seconds", rel=0.05, absolute=0.005,
                          noise_sigma=3.0)
        # base mean 1.0, std 0.1 -> band 0.3 dominates the 5% rel.
        assert gate.allowance(1.0, 0.1) == pytest.approx(0.3)
        assert gate.allowance(1.0, 0.0) == pytest.approx(0.05)
        assert gate.allowance(0.0, 0.0) == pytest.approx(0.005)
