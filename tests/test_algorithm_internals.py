"""White-box tests of algorithm internals.

The black-box suites check answers and aggregate metrics; these tests
pin down the internal mechanics the paper describes: Hybrid's block
formation and off-diagonal grouping, SPN's serialised tree layout,
Compute_Tree's materialised predecessor lists, and BJ's rewritten
adjacency.
"""

from repro.core.bfs import BjAlgorithm
from repro.core.btc import BtcAlgorithm
from repro.core.compute_tree import ComputeTreeAlgorithm
from repro.core.context import ExecutionContext
from repro.core.hybrid import HybridAlgorithm
from repro.core.query import Query, SystemConfig
from repro.core.spanning_tree import SpanningTreeAlgorithm
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag
from repro.storage.iostats import Phase
from repro.storage.page import PageKind


def restructured(algorithm, graph, query=None, system=None):
    ctx = ExecutionContext(
        graph,
        query or Query.full(),
        system or SystemConfig(),
        needs_inverse=algorithm.needs_inverse,
    )
    algorithm.restructure(ctx)
    return ctx


class TestHybridInternals:
    def test_block_formation_covers_all_nodes_in_order(self, medium_dag):
        algorithm = HybridAlgorithm()
        ctx = restructured(algorithm, medium_dag,
                           system=SystemConfig(buffer_pages=10, ilimit=0.3))
        order = list(reversed(ctx.topo_order))
        index = 0
        seen = []
        while index < len(order):
            block, index = algorithm._form_block(ctx, order, index, block_budget=3)
            assert block, "blocks must not be empty"
            seen.extend(block)
        assert seen == order

    def test_block_respects_the_page_budget(self, medium_dag):
        algorithm = HybridAlgorithm()
        ctx = restructured(algorithm, medium_dag,
                           system=SystemConfig(buffer_pages=10, ilimit=0.3))
        order = list(reversed(ctx.topo_order))
        block, _ = algorithm._form_block(ctx, order, 0, block_budget=2)
        pages = set()
        for node in block:
            pages.update(ctx.store.pages_of(node))
        assert len(pages) <= 2

    def test_oversized_first_list_still_forms_a_block(self):
        # One giant list exceeding the budget must be taken alone.
        graph = Digraph.from_arcs(
            600, [(0, dst) for dst in range(1, 600)]
        )
        algorithm = HybridAlgorithm()
        ctx = restructured(algorithm, graph,
                           system=SystemConfig(buffer_pages=10, ilimit=0.1))
        order = list(reversed(ctx.topo_order))
        # Find the position of node 0's (big) list in expansion order.
        position = order.index(0)
        block, _ = algorithm._form_block(ctx, order, position, block_budget=1)
        assert block[0] == 0


class TestSpanningTreeInternals:
    def test_serialised_indexes_are_unique_and_dense_enough(self, small_dag):
        algorithm = SpanningTreeAlgorithm()
        ctx = restructured(algorithm, small_dag)
        ctx.enter_phase(Phase.COMPUTE)
        algorithm.compute(ctx)
        for node in small_dag.nodes():
            tree = algorithm._trees[node]
            indexes = list(tree.index.values())
            assert len(indexes) == len(set(indexes))
            if indexes:
                assert max(indexes) < tree.entry_count

    def test_entry_count_includes_parent_markers(self):
        # 0 -> 1 -> 2: tree of 0 holds nodes 1, 2 plus a marker for the
        # internal node 1.
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        algorithm = SpanningTreeAlgorithm()
        ctx = restructured(algorithm, graph)
        ctx.enter_phase(Phase.COMPUTE)
        algorithm.compute(ctx)
        tree = algorithm._trees[0]
        assert sorted(tree.index) == [1, 2]
        assert tree.entry_count == 3  # two nodes + one parent marker

    def test_tree_structure_reflects_a_spanning_tree(self, small_dag):
        """Every member of a tree appears exactly once, reachable from
        the roots -- i.e. the structure really is a spanning tree of
        the successor set."""
        algorithm = SpanningTreeAlgorithm()
        ctx = restructured(algorithm, small_dag)
        ctx.enter_phase(Phase.COMPUTE)
        algorithm.compute(ctx)
        for node in small_dag.nodes():
            tree = algorithm._trees[node]
            visited = []
            stack = list(tree.roots)
            while stack:
                member = stack.pop()
                visited.append(member)
                stack.extend(tree.children.get(member, ()))
            assert sorted(visited) == sorted(tree.index)
            bits = ctx.lists[node]
            assert sorted(visited) == [
                successor for successor in range(small_dag.num_nodes)
                if (bits >> successor) & 1
            ]


class TestComputeTreeInternals:
    def test_predecessor_lists_are_materialised(self, medium_dag):
        algorithm = ComputeTreeAlgorithm(dual_representation=True)
        ctx = restructured(algorithm, medium_dag, Query.ptc([0, 10, 20]))
        store = algorithm._pred_store
        total = sum(store.length(node) for node in ctx.topo_order)
        magic_arcs = sum(
            1
            for node in ctx.topo_order
            for predecessor in medium_dag.predecessors(node)
            if predecessor in ctx.in_scope
        )
        assert total == magic_arcs
        assert all(page.kind is PageKind.PREDECESSOR
                   for node in ctx.topo_order
                   for page in store.pages_of(node))

    def test_jkb2_charges_the_inverse_relation(self, medium_dag):
        algorithm = ComputeTreeAlgorithm(dual_representation=True)
        ctx = restructured(algorithm, medium_dag, Query.ptc([0]))
        assert ctx.metrics.io.reads_of(PageKind.INVERSE_RELATION) > 0

    def test_jkb_probes_the_forward_relation_instead(self, medium_dag):
        algorithm = ComputeTreeAlgorithm(dual_representation=False)
        ctx = restructured(algorithm, medium_dag, Query.ptc([0]))
        assert ctx.metrics.io.reads_of(PageKind.INVERSE_RELATION) == 0
        assert ctx.inverse_relation is None


class TestBjInternals:
    def test_adjacency_is_rewritten_not_the_graph(self, chain):
        algorithm = BjAlgorithm()
        ctx = restructured(algorithm, chain, Query.ptc([0]))
        # The context's adjacency was reduced...
        assert ctx.adjacency[0] == [1, 2, 3, 4, 5]
        assert all(ctx.adjacency[node] == [] for node in range(1, 6))
        # ...but the input graph is untouched.
        assert chain.successors(0) == [1]

    def test_full_query_skips_the_reduction(self, chain):
        algorithm = BjAlgorithm()
        ctx = restructured(algorithm, chain, Query.full())
        assert ctx.adjacency[0] == [1]


class TestSharedRestructuring:
    def test_lists_are_created_in_reverse_topological_order(self, small_dag):
        """Inter-list clustering depends on the creation order: a
        node's list page must not precede its successors' pages."""
        algorithm = BtcAlgorithm()
        ctx = restructured(algorithm, small_dag)
        first_page = {}
        for node in small_dag.nodes():
            pages = ctx.store.pages_of(node)
            if pages:
                first_page[node] = min(page.number for page in pages)
        for src, dst in small_dag.arcs():
            if src in first_page and dst in first_page:
                assert first_page[dst] <= first_page[src] + 1

    def test_restructure_io_is_attributed_to_the_restructure_phase(self, medium_dag):
        algorithm = BtcAlgorithm()
        ctx = restructured(algorithm, medium_dag)
        assert ctx.metrics.io.reads_in(Phase.RESTRUCTURE) > 0
        assert ctx.metrics.io.reads_in(Phase.COMPUTE) == 0
