"""Tests for the block-structured successor-list store."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import BLOCKS_PER_PAGE, SUCCESSORS_PER_PAGE, PageKind
from repro.storage.successor_store import ListPlacementPolicy, SuccessorListStore


def make_store(capacity: int = 100, policy=ListPlacementPolicy.MOVE_SELF):
    pool = BufferPool(capacity)
    return SuccessorListStore(pool, policy=policy), pool


class TestCreation:
    def test_create_and_length(self):
        store, _pool = make_store()
        store.create_list(0, 10)
        assert store.length(0) == 10
        assert 0 in store

    def test_duplicate_creation_raises(self):
        store, _pool = make_store()
        store.create_list(0, 1)
        with pytest.raises(StorageError):
            store.create_list(0, 1)

    def test_empty_list_occupies_no_pages(self):
        store, _pool = make_store()
        store.create_list(0, 0)
        assert store.pages_of(0) == []
        assert store.page_count(0) == 0

    def test_page_capacity_is_450_successors(self):
        store, _pool = make_store()
        store.create_list(0, SUCCESSORS_PER_PAGE)
        assert store.page_count(0) == 1
        store.create_list(1, 1)
        # The full page has no free blocks; the new list opens page 2.
        assert store.total_pages == 2

    def test_small_lists_share_a_page(self):
        store, _pool = make_store()
        for node in range(BLOCKS_PER_PAGE):
            store.create_list(node, 1)  # one block each
        assert store.total_pages == 1

    def test_creation_charges_no_reads(self):
        store, pool = make_store()
        store.create_list(0, 100)
        assert pool.stats.total_reads == 0  # fresh pages are created, not read

    def test_new_pages_are_written_on_flush(self):
        store, pool = make_store()
        store.create_list(0, SUCCESSORS_PER_PAGE + 1)
        pool.flush()
        assert pool.stats.total_writes == 2


class TestReads:
    def test_read_touches_every_page_of_the_list(self):
        store, pool = make_store()
        store.create_list(0, 2 * SUCCESSORS_PER_PAGE)
        pool.stats.requests.clear()
        pages = store.read_list(0)
        assert pages == 2

    def test_read_unknown_list_raises(self):
        store, _pool = make_store()
        with pytest.raises(StorageError):
            store.read_list(99)

    def test_read_blocks_touches_only_covering_pages(self):
        store, pool = make_store()
        store.create_list(0, 2 * SUCCESSORS_PER_PAGE)  # blocks 0..59 on 2 pages
        touched = store.read_blocks(0, [0, 1])  # both on the first page
        assert touched == 1
        touched = store.read_blocks(0, [0, BLOCKS_PER_PAGE])  # one per page
        assert touched == 2


class TestAppends:
    def test_append_grows_length(self):
        store, _pool = make_store()
        store.create_list(0, 3)
        store.append(0, 4)
        assert store.length(0) == 7

    def test_append_zero_is_a_no_op(self):
        store, pool = make_store()
        store.create_list(0, 3)
        before = pool.stats.total_requests
        store.append(0, 0)
        assert pool.stats.total_requests == before

    def test_append_fills_tail_block_before_allocating(self):
        store, _pool = make_store()
        store.create_list(0, 10)  # one block, 5 slots left
        store.append(0, 5)
        assert store.page_count(0) == 1
        assert store.total_pages == 1

    def test_move_self_split_spills_to_new_page(self):
        store, _pool = make_store(policy=ListPlacementPolicy.MOVE_SELF)
        # Fill page 0 completely with two lists.
        store.create_list(0, SUCCESSORS_PER_PAGE - 15)
        store.create_list(1, 15)
        store.append(0, 30)  # page full: expanding list spills
        assert store.splits == 1
        assert store.page_count(0) == 2
        assert store.page_count(1) == 1  # the other list did not move

    def test_move_largest_relocates_the_other_list(self):
        store, _pool = make_store(policy=ListPlacementPolicy.MOVE_LARGEST)
        store.create_list(0, SUCCESSORS_PER_PAGE - 30)
        store.create_list(1, 15)
        store.create_list(2, 15)
        store.append(0, 40)
        assert store.relocations >= 1
        # The expanding list stayed clustered on its original page plus
        # possibly the freed room.
        assert store.length(0) == SUCCESSORS_PER_PAGE - 30 + 40

    def test_move_smallest_picks_the_smallest_victim(self):
        store, _pool = make_store(policy=ListPlacementPolicy.MOVE_SMALLEST)
        store.create_list(0, SUCCESSORS_PER_PAGE - 45)
        store.create_list(1, 30)
        store.create_list(2, 15)
        pages_of_1_before = store.pages_of(1)
        store.append(0, 60)
        # List 2 (smallest) moved; list 1 stayed.
        assert store.pages_of(1) == pages_of_1_before

    def test_lengths_survive_relocation(self):
        store, _pool = make_store(policy=ListPlacementPolicy.MOVE_LARGEST)
        store.create_list(0, 400)
        store.create_list(1, 50)
        store.append(0, 500)
        assert store.length(0) == 900
        assert store.length(1) == 50


class TestRewriteAndDrop:
    def test_rewrite_replaces_layout(self):
        store, _pool = make_store()
        store.create_list(0, 700)
        store.rewrite_list(0, 10)
        assert store.length(0) == 10
        assert store.page_count(0) == 1

    def test_drop_frees_blocks_for_reuse(self):
        store, _pool = make_store()
        store.create_list(0, SUCCESSORS_PER_PAGE)
        store.drop_list(0)
        assert 0 not in store
        store.create_list(1, 5)
        # An implementation may or may not reuse freed space, but the
        # dropped list must be gone.
        assert store.length(1) == 5

    def test_block_index_of_entry(self):
        store, _pool = make_store()
        store.create_list(0, 40)
        assert store.block_index_of_entry(0, 0) == 0
        assert store.block_index_of_entry(0, 14) == 0
        assert store.block_index_of_entry(0, 15) == 1
        with pytest.raises(StorageError):
            store.block_index_of_entry(0, 40)


class TestClustering:
    def test_consecutively_created_lists_are_neighbours(self):
        store, _pool = make_store()
        store.create_list(0, 15)
        store.create_list(1, 15)
        assert store.pages_of(0) == store.pages_of(1)

    def test_store_kind_tags_its_pages(self):
        pool = BufferPool(10)
        store = SuccessorListStore(pool, kind=PageKind.OUTPUT)
        store.create_list(0, 20)
        assert all(page.kind is PageKind.OUTPUT for page in store.pages_of(0))
