"""Tests for the buffer pool and its replacement policies."""

import pytest

from repro.errors import (
    BufferPoolError,
    BufferPoolExhaustedError,
    ConfigurationError,
    PageNotPinnedError,
)
from repro.storage.buffer import BufferPool, make_policy
from repro.storage.iostats import IoStats
from repro.storage.page import PageId, PageKind


def page(number: int, kind: PageKind = PageKind.SUCCESSOR) -> PageId:
    return PageId(kind, number)


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BufferPool(0)

    def test_first_access_is_a_miss(self):
        pool = BufferPool(4)
        assert pool.access(page(0)) is False
        assert pool.stats.total_reads == 1

    def test_second_access_is_a_hit(self):
        pool = BufferPool(4)
        pool.access(page(0))
        assert pool.access(page(0)) is True
        assert pool.stats.total_reads == 1

    def test_requests_equal_hits_plus_misses(self):
        pool = BufferPool(2)
        for number in [0, 1, 0, 2, 1, 0, 0]:
            pool.access(page(number))
        stats = pool.stats
        assert stats.total_requests == 7
        assert stats.total_requests == stats.total_hits + stats.total_reads

    def test_occupancy_never_exceeds_capacity(self):
        pool = BufferPool(3)
        for number in range(10):
            pool.access(page(number))
            assert len(pool) <= 3

    def test_contains(self):
        pool = BufferPool(2)
        pool.access(page(1))
        assert page(1) in pool
        assert page(2) not in pool


class TestDirtyPages:
    def test_clean_eviction_writes_nothing(self):
        pool = BufferPool(1)
        pool.access(page(0))
        pool.access(page(1))  # evicts page 0, clean
        assert pool.stats.total_writes == 0

    def test_dirty_eviction_writes_once(self):
        pool = BufferPool(1)
        pool.access(page(0), dirty=True)
        pool.access(page(1))  # evicts dirty page 0
        assert pool.stats.total_writes == 1

    def test_dirtiness_is_sticky_until_written(self):
        pool = BufferPool(2)
        pool.access(page(0), dirty=True)
        pool.access(page(0))  # a clean access does not launder the dirt
        assert pool.is_dirty(page(0))

    def test_flush_writes_all_dirty_pages_once(self):
        pool = BufferPool(4)
        pool.access(page(0), dirty=True)
        pool.access(page(1), dirty=True)
        pool.access(page(2))
        pool.flush()
        assert pool.stats.total_writes == 2
        pool.flush()  # second flush writes nothing new
        assert pool.stats.total_writes == 2

    def test_flush_selected_writes_only_chosen_pages(self):
        pool = BufferPool(4)
        pool.access(page(0), dirty=True)
        pool.access(page(1), dirty=True)
        pool.flush_selected({page(0)})
        assert pool.stats.total_writes == 1
        # The unchosen page's dirt was discarded, not deferred.
        pool.flush()
        assert pool.stats.total_writes == 1

    def test_create_charges_no_read(self):
        pool = BufferPool(2)
        pool.create(page(7))
        assert pool.stats.total_reads == 0
        assert pool.is_dirty(page(7))


class TestPinning:
    def test_pinned_pages_survive_pressure(self):
        pool = BufferPool(2)
        pool.pin(page(0))
        for number in range(1, 6):
            pool.access(page(number))
        assert page(0) in pool

    def test_all_pinned_raises_exhausted(self):
        pool = BufferPool(2)
        pool.pin(page(0))
        pool.pin(page(1))
        with pytest.raises(BufferPoolExhaustedError):
            pool.access(page(2))

    def test_unpin_restores_evictability(self):
        pool = BufferPool(1)
        pool.pin(page(0))
        pool.unpin(page(0))
        pool.access(page(1))
        assert page(0) not in pool

    def test_unpin_unpinned_page_raises(self):
        pool = BufferPool(2)
        pool.access(page(0))
        with pytest.raises(PageNotPinnedError):
            pool.unpin(page(0))

    def test_pins_nest(self):
        pool = BufferPool(1)
        pool.pin(page(0))
        pool.pin(page(0))
        pool.unpin(page(0))
        # Still pinned once.
        with pytest.raises(BufferPoolExhaustedError):
            pool.access(page(1))
        pool.unpin(page(0))
        pool.access(page(1))

    def test_explicit_evict_of_pinned_page_raises(self):
        pool = BufferPool(2)
        pool.pin(page(0))
        with pytest.raises(BufferPoolError):
            pool.evict(page(0))

    def test_pinned_count(self):
        pool = BufferPool(3)
        pool.pin(page(0))
        pool.pin(page(1))
        assert pool.pinned_count == 2
        pool.unpin_all()
        assert pool.pinned_count == 0


class TestLru:
    def test_evicts_least_recently_used(self):
        pool = BufferPool(2, policy="lru")
        pool.access(page(0))
        pool.access(page(1))
        pool.access(page(0))  # 1 is now LRU
        pool.access(page(2))  # evicts 1
        assert page(0) in pool
        assert page(1) not in pool


class TestMru:
    def test_evicts_most_recently_used(self):
        pool = BufferPool(2, policy="mru")
        pool.access(page(0))
        pool.access(page(1))  # 1 is MRU
        pool.access(page(2))  # evicts 1
        assert page(0) in pool
        assert page(1) not in pool


class TestFifo:
    def test_evicts_oldest_admission_despite_hits(self):
        pool = BufferPool(2, policy="fifo")
        pool.access(page(0))
        pool.access(page(1))
        pool.access(page(0))  # hit does not refresh FIFO position
        pool.access(page(2))  # evicts 0
        assert page(0) not in pool
        assert page(1) in pool


class TestClock:
    def test_second_chance(self):
        pool = BufferPool(2, policy="clock")
        pool.access(page(0))
        pool.access(page(1))
        pool.access(page(0))  # reference bit set on 0
        # Both referenced: first sweep clears, second evicts page 0?
        # CLOCK clears 0's bit first, then 1's, then evicts 0.
        pool.access(page(2))
        assert len(pool) == 2

    def test_clock_respects_pins(self):
        pool = BufferPool(2, policy="clock")
        pool.pin(page(0))
        pool.access(page(1))
        pool.access(page(2))  # must evict 1, never the pinned 0
        assert page(0) in pool


class TestRandom:
    def test_seeded_random_is_deterministic(self):
        def run(seed: int) -> list[int]:
            pool = BufferPool(3, policy=make_policy("random", seed=seed))
            evictions = []
            for number in range(20):
                before = {frame.number for frame in list(_pages(pool))}
                pool.access(page(number))
                after = {frame.number for frame in list(_pages(pool))}
                evictions.extend(sorted(before - after))
            return evictions

        assert run(5) == run(5)

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("optimal-oracle")


def _pages(pool: BufferPool):
    return list(pool._frames)  # test-only peek at residency
