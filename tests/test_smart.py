"""Tests for the Smart (squaring) baseline."""

import math

from repro.baselines.seminaive import SeminaiveAlgorithm
from repro.baselines.smart import SmartAlgorithm
from repro.core.query import Query, SystemConfig
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


class TestCorrectness:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = SmartAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_matches_oracle(self, small_dag):
        sources = [0, 20, 40]
        result = SmartAlgorithm().run(small_dag, Query.ptc(sources))
        oracle = oracle_closure(small_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_empty_graph(self):
        result = SmartAlgorithm().run(Digraph(3))
        assert result.num_tuples == 0


class TestSquaring:
    def test_logarithmic_iterations(self):
        """A path of length 64 closes in ~log2(64) squarings, not 64."""
        n = 65
        chain = Digraph.from_arcs(n, [(i, i + 1) for i in range(n - 1)])
        smart = SmartAlgorithm()
        smart.run(chain)
        assert smart.iterations <= math.ceil(math.log2(n)) + 1

        seminaive = SeminaiveAlgorithm()
        seminaive.run(chain)
        assert seminaive.iterations >= n - 2
        assert smart.iterations < seminaive.iterations

    def test_seminaive_outperforms_smart_on_io(self):
        """Kabler et al. [19]: Seminaive always outperformed Smart."""
        graph = generate_dag(500, 4, 100, seed=61)
        system = SystemConfig(buffer_pages=10)
        smart_io = SmartAlgorithm().run(graph, system=system).metrics.total_io
        seminaive_io = SeminaiveAlgorithm().run(graph, system=system).metrics.total_io
        assert seminaive_io < smart_io

    def test_squaring_rederives_more_duplicates(self):
        graph = generate_dag(400, 4, 80, seed=62)
        smart = SmartAlgorithm().run(graph).metrics
        seminaive = SeminaiveAlgorithm().run(graph).metrics
        assert smart.duplicates >= seminaive.duplicates
