"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.experiments.export import export_all, main


class TestExportAll:
    def test_table_export(self, tmp_path):
        written = export_all("smoke", tmp_path, only=["table2"])
        assert [path.name for path in written] == ["table2.csv"]
        with written[0].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 12
        assert rows[0]["graph"] == "G1"

    def test_figure_export_writes_one_file_per_panel(self, tmp_path):
        written = export_all("smoke", tmp_path, only=["figure11"])
        assert sorted(path.name for path in written) == [
            "figure11_a.csv",
            "figure11_b.csv",
        ]
        with written[0].open() as handle:
            rows = list(csv.DictReader(handle))
        assert "BTC" in rows[0]
        assert "s" in rows[0]

    def test_single_panel_figures_have_no_suffix(self, tmp_path):
        written = export_all("smoke", tmp_path, only=["figure6"])
        assert [path.name for path in written] == ["figure6.csv"]

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            export_all("smoke", tmp_path, only=["figure0"])

    def test_cli_prints_paths(self, tmp_path, capsys):
        assert main(["--profile", "smoke", "--out", str(tmp_path),
                     "--only", "table3"]) == 0
        assert "table3.csv" in capsys.readouterr().out
