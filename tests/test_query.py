"""Tests for Query and SystemConfig."""

import pytest

from repro.core.query import Query, SystemConfig
from repro.errors import ConfigurationError
from repro.storage.successor_store import ListPlacementPolicy


class TestQuery:
    def test_full_query(self):
        query = Query.full()
        assert query.is_full
        assert query.sources is None
        assert query.selectivity is None

    def test_ptc_query(self):
        query = Query.ptc([3, 1, 2])
        assert not query.is_full
        assert query.sources == (3, 1, 2)
        assert query.selectivity == 3

    def test_ptc_deduplicates_preserving_order(self):
        assert Query.ptc([5, 1, 5, 2, 1]).sources == (5, 1, 2)

    def test_empty_ptc_raises(self):
        with pytest.raises(ConfigurationError):
            Query.ptc([])

    def test_query_is_hashable(self):
        assert hash(Query.ptc([1, 2])) == hash(Query.ptc([1, 2]))


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.buffer_pages == 20
        assert config.page_policy == "lru"
        assert config.list_policy is ListPlacementPolicy.MOVE_SELF

    def test_non_positive_buffer_raises(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(buffer_pages=0)

    def test_ilimit_bounds(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(ilimit=1.5)
        with pytest.raises(ConfigurationError):
            SystemConfig(ilimit=-0.1)

    def test_list_policy_accepts_strings(self):
        config = SystemConfig(list_policy="move_largest")
        assert config.list_policy is ListPlacementPolicy.MOVE_LARGEST

    def test_invalid_list_policy_string_raises(self):
        with pytest.raises(ValueError):
            SystemConfig(list_policy="move_everything")
