"""Tests for the lint CFG builder and the forward dataflow solver.

Structural fixtures pin the edge shapes the flow rules rely on --
try/finally routing, loop back-edges, ``with``-suite placement, async
constructs, exception edges -- and a hypothesis suite asserts the
builder's core invariant over generated programs: every statement of a
function body lands in exactly one basic block.

The dataflow half exercises the gen/kill layer directly with a toy
acquire/release vocabulary, covering exactly the exception-edge
semantics RPL008 depends on: a failed acquire acquired nothing, a
raising pure release still releases, and ``finally`` suites are atomic.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.cfg import (
    BACK,
    EXCEPT,
    FALSE,
    NORMAL,
    TRUE,
    build_cfg,
    function_statements,
    may_raise,
    scan_nodes,
)
from repro.lint.dataflow import (
    MAY,
    MUST,
    GenKill,
    solve_gen_kill,
)


def fn(source):
    """Parse one dedented function definition."""
    return ast.parse(textwrap.dedent(source)).body[0]


def cfg_of(source):
    return build_cfg(fn(source))


def effects_of(stmt):
    """Toy resource vocabulary: acquire() gens R, release() kills it."""
    gen, kill = set(), set()
    for root in scan_nodes(stmt):
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "acquire":
                    gen.add("R")
                elif node.func.id == "release":
                    kill.add("R")
    return GenKill(frozenset(gen), frozenset(kill))


def leaks(source, mode=MAY):
    """Facts reaching either sink of the single function in ``source``."""
    cfg = cfg_of(source)
    solution = solve_gen_kill(cfg, effects_of, mode=mode)
    return (
        solution.facts_reaching(cfg.exit),
        solution.facts_reaching(cfg.raise_exit),
    )


class TestCfgStructure:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of(
            """\
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
        blocks = [b for b in cfg.body_blocks() if b.stmts]
        assert len(blocks) == 1
        assert [type(s).__name__ for s in blocks[0].stmts] == [
            "Assign", "Assign", "Return",
        ]
        assert (cfg.exit, NORMAL) in blocks[0].succ

    def test_if_grows_true_and_false_edges(self):
        cfg = cfg_of(
            """\
            def f(x):
                if x:
                    a = 1
                b = 2
            """
        )
        func = cfg.func
        head = cfg.block_of(func.body[0])
        kinds = {kind for _, kind in head.succ}
        assert TRUE in kinds and FALSE in kinds
        then_block = cfg.block_of(func.body[0].body[0])
        assert (then_block.index, TRUE) in head.succ

    def test_loop_back_edge(self):
        cfg = cfg_of(
            """\
            def f(items):
                for item in items:
                    consume(item)
                done()
            """
        )
        func = cfg.func
        head = cfg.block_of(func.body[0])
        body = cfg.block_of(func.body[0].body[0])
        assert (head.index, BACK) in body.succ
        assert (body.index, TRUE) in head.succ
        # Loop exhaustion leaves via the FALSE edge.
        after = cfg.block_of(func.body[1])
        assert (after.index, FALSE) in head.succ

    def test_while_loop_condition_never_constant_folded(self):
        cfg = cfg_of(
            """\
            def f():
                while True:
                    step()
            """
        )
        head = cfg.block_of(cfg.func.body[0])
        assert any(kind == FALSE for _, kind in head.succ)

    def test_break_and_continue_target_the_loop(self):
        cfg = cfg_of(
            """\
            def f(items):
                for item in items:
                    if item:
                        break
                    continue
                after()
            """
        )
        func = cfg.func
        head = cfg.block_of(func.body[0])
        break_block = cfg.block_of(func.body[0].body[0].body[0])
        continue_block = cfg.block_of(func.body[0].body[1])
        after = cfg.block_of(func.body[1])
        assert (after.index, NORMAL) in break_block.succ
        assert (head.index, BACK) in continue_block.succ

    def test_call_block_has_exception_edge_to_raise_exit(self):
        cfg = cfg_of(
            """\
            def f():
                g()
            """
        )
        block = cfg.block_of(cfg.func.body[0])
        assert (cfg.raise_exit, EXCEPT) in block.succ

    def test_try_body_may_dispatch_to_each_handler(self):
        cfg = cfg_of(
            """\
            def f():
                try:
                    g()
                except ValueError:
                    a = 1
                except KeyError:
                    b = 2
            """
        )
        func = cfg.func
        body = cfg.block_of(func.body[0].body[0])
        handler_blocks = {
            cfg.block_of(h.body[0]).index for h in func.body[0].handlers
        }
        except_targets = {i for i, kind in body.succ if kind == EXCEPT}
        assert handler_blocks <= except_targets

    def test_return_in_try_routes_through_finally(self):
        cfg = cfg_of(
            """\
            def f():
                try:
                    return g()
                finally:
                    release()
            """
        )
        func = cfg.func
        finally_block = cfg.block_of(func.body[0].finalbody[0])
        assert finally_block.index in cfg.finally_blocks
        # The finally's exit fans out to the routed return...
        assert (cfg.exit, NORMAL) in finally_block.succ
        # ...and propagates escaping exceptions outward.
        assert (cfg.raise_exit, EXCEPT) in finally_block.succ
        # The return reaches the finally, not the exit directly.
        return_block = cfg.block_of(func.body[0].body[0])
        assert (finally_block.index, NORMAL) in return_block.succ
        assert (cfg.exit, NORMAL) not in return_block.succ

    def test_with_suite_lives_in_its_own_block(self):
        cfg = cfg_of(
            """\
            def f(path):
                with open(path) as fh:
                    use(fh)
                after()
            """
        )
        func = cfg.func
        header = cfg.block_of(func.body[0])
        suite = cfg.block_of(func.body[0].body[0])
        assert header.index != suite.index
        assert (suite.index, NORMAL) in header.succ
        # scan_nodes on the header yields the context expr (the open
        # call) and the bound name -- what RPL008's with-recognition
        # walks.
        names = {
            type(node).__name__ for node in scan_nodes(func.body[0])
        }
        assert names == {"Call", "Name"}

    def test_async_constructs_build(self):
        cfg = cfg_of(
            """\
            async def f(conn, items):
                async with conn.begin() as tx:
                    await tx.ping()
                async for item in items:
                    await consume(item)
                return 1
            """
        )
        func = cfg.func
        for stmt in function_statements(func):
            assert cfg.block_of(stmt) is not None
        loop_head = cfg.block_of(func.body[1])
        loop_body = cfg.block_of(func.body[1].body[0])
        assert (loop_head.index, BACK) in loop_body.succ

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of(
            """\
            def f():
                return 1
                dead()
            """
        )
        dead = cfg.block_of(cfg.func.body[1])
        assert dead.index not in cfg.reachable()
        # ...but the statement still lives in exactly one block.
        assert dead.stmts == [cfg.func.body[1]]

    def test_render_is_a_line_per_block(self):
        cfg = cfg_of(
            """\
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        dump = cfg.render()
        assert len(dump.splitlines()) == len(cfg.blocks)
        assert "true->" in dump and "false->" in dump


class TestScanNodesAndMayRaise:
    def test_if_header_yields_only_the_test(self):
        stmt = fn("def f(x):\n    if x > 1:\n        g()\n").body[0]
        (node,) = list(scan_nodes(stmt))
        assert isinstance(node, ast.Compare)

    def test_except_handler_yields_only_its_type(self):
        handler = fn(
            "def f():\n    try:\n        g()\n"
            "    except ValueError:\n        h()\n"
        ).body[0].handlers[0]
        (node,) = list(scan_nodes(handler))
        assert isinstance(node, ast.Name) and node.id == "ValueError"

    def test_nested_defs_contribute_nothing(self):
        stmt = fn("def f():\n    def g():\n        h()\n").body[0]
        assert list(scan_nodes(stmt)) == []

    def test_may_raise(self):
        body = fn(
            """\
            def f():
                x = 1
                g()
                raise ValueError()
                assert x
            """
        ).body
        assert not may_raise(body[0])
        assert may_raise(body[1])
        assert may_raise(body[2])
        assert may_raise(body[3])


class TestDataflow:
    def test_paired_acquire_release_is_clean(self):
        normal, exceptional = leaks(
            """\
            def f():
                r = acquire()
                release(r)
            """
        )
        assert normal == frozenset()
        # A raise inside release() happens after the acquire is matched
        # by a *pure* release: the fact does not leak on that edge.
        assert exceptional == frozenset()

    def test_unreleased_acquire_reaches_exit(self):
        normal, _ = leaks(
            """\
            def f():
                r = acquire()
                use(r)
            """
        )
        assert normal == {"R"}

    def test_failed_acquire_does_not_leak(self):
        _, exceptional = leaks(
            """\
            def f():
                r = acquire()
            """
        )
        assert exceptional == frozenset()

    def test_raise_between_acquire_and_release_leaks_exceptionally(self):
        normal, exceptional = leaks(
            """\
            def f():
                r = acquire()
                work(r)
                release(r)
            """
        )
        assert normal == frozenset()
        assert exceptional == {"R"}

    def test_release_in_finally_covers_the_exception_edge(self):
        normal, exceptional = leaks(
            """\
            def f():
                r = acquire()
                try:
                    work(r)
                finally:
                    release(r)
            """
        )
        assert normal == frozenset()
        assert exceptional == frozenset()

    def test_release_on_one_branch_only_leaks_in_may_mode(self):
        normal, _ = leaks(
            """\
            def f(x):
                r = acquire()
                if x:
                    release(r)
            """
        )
        assert normal == {"R"}

    def test_must_mode_intersects_branches(self):
        source = """\
            def f(x):
                r = acquire()
                if x:
                    a = 1
                else:
                    b = 2
                use(r)
        """
        cfg = cfg_of(source)
        solution = solve_gen_kill(cfg, effects_of, mode=MUST)
        # Both arms carry the fact, so the must-join keeps it.
        assert solution.facts_reaching(cfg.exit) == {"R"}

    def test_loop_back_edge_reaches_fixpoint(self):
        normal, _ = leaks(
            """\
            def f(items):
                for item in items:
                    r = acquire()
                    release(r)
            """
        )
        assert normal == frozenset()


# -- the one-block-per-statement property ------------------------------------


@st.composite
def _suite(draw, depth, in_loop):
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        lines.extend(draw(_statement(depth, in_loop)))
    return lines


def _indent(lines):
    return ["    " + line for line in lines]


@st.composite
def _statement(draw, depth, in_loop):
    options = ["assign", "call", "return", "raise"]
    if in_loop:
        options += ["break", "continue"]
    if depth < 2:
        options += ["if", "for", "while", "with", "try"] * 2
    kind = draw(st.sampled_from(options))
    if kind == "assign":
        return ["x = 1"]
    if kind == "call":
        return ["f()"]
    if kind == "return":
        return ["return x"]
    if kind == "raise":
        return ["raise ValueError()"]
    if kind == "break":
        return ["break"]
    if kind == "continue":
        return ["continue"]
    if kind == "if":
        lines = ["if cond():", *_indent(draw(_suite(depth + 1, in_loop)))]
        if draw(st.booleans()):
            lines += ["else:", *_indent(draw(_suite(depth + 1, in_loop)))]
        return lines
    if kind == "for":
        return ["for i in items:", *_indent(draw(_suite(depth + 1, True)))]
    if kind == "while":
        return ["while cond():", *_indent(draw(_suite(depth + 1, True)))]
    if kind == "with":
        return [
            "with ctx() as c:", *_indent(draw(_suite(depth + 1, in_loop)))
        ]
    lines = ["try:", *_indent(draw(_suite(depth + 1, in_loop)))]
    has_handler = draw(st.booleans())
    if has_handler:
        lines += [
            "except ValueError:", *_indent(draw(_suite(depth + 1, in_loop)))
        ]
    if not has_handler or draw(st.booleans()):
        lines += ["finally:", *_indent(draw(_suite(depth + 1, in_loop)))]
    return lines


@given(_suite(depth=0, in_loop=False))
@settings(max_examples=75, deadline=None)
def test_every_statement_lands_in_exactly_one_block(body_lines):
    source = "\n".join(["def f(x, items):", *_indent(body_lines), ""])
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    for stmt in function_statements(func):
        owners = [
            block.index
            for block in cfg.blocks
            for s in block.stmts
            if s is stmt
        ]
        assert len(owners) == 1, (
            f"{type(stmt).__name__} at line {stmt.lineno} in "
            f"{len(owners)} blocks\n{source}\n{cfg.render()}"
        )
    # Reachable blocks only reach blocks that exist, and the sinks have
    # no statements of their own.
    assert cfg.reachable() <= {b.index for b in cfg.blocks}
    assert cfg.blocks[cfg.exit].stmts == []
    assert cfg.blocks[cfg.raise_exit].stmts == []
