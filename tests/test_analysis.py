"""Tests for DAG analysis and the rectangle model (Section 5.3)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import (
    bitset_to_nodes,
    node_levels,
    profile_graph,
    transitive_closure_sets,
    transitive_closure_size,
    transitive_reduction_arcs,
)
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


class TestNodeLevels:
    def test_sink_has_level_one(self):
        graph = Digraph.from_arcs(2, [(0, 1)])
        levels = node_levels(graph)
        assert levels[1] == 1
        assert levels[0] == 2

    def test_level_is_longest_path_to_a_sink(self):
        # 0 -> 1 -> 2 and 0 -> 2: level(0) is 3 via the longer path.
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2), (0, 2)])
        levels = node_levels(graph)
        assert levels == {0: 3, 1: 2, 2: 1}

    def test_isolated_nodes_are_sinks(self):
        graph = Digraph(3)
        assert node_levels(graph) == {0: 1, 1: 1, 2: 1}

    def test_scoped_levels_ignore_outside_arcs(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        levels = node_levels(graph, nodes=[0, 1])
        assert levels == {0: 2, 1: 1}


class TestClosure:
    def test_matches_networkx(self, medium_dag):
        closure = transitive_closure_sets(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(bitset_to_nodes(closure[node])) == oracle[node]

    def test_closure_size(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2)])
        assert transitive_closure_size(graph) == 3  # (0,1) (0,2) (1,2)

    def test_closure_excludes_self(self, small_dag):
        closure = transitive_closure_sets(small_dag)
        for node in small_dag.nodes():
            assert not (closure[node] >> node) & 1


class TestTransitiveReduction:
    def test_diamond_shortcut_is_redundant(self, diamond):
        irredundant, redundant = transitive_reduction_arcs(diamond)
        assert redundant == {(0, 3)}
        assert (0, 1) in irredundant
        assert len(irredundant) + len(redundant) == diamond.num_arcs

    def test_matches_networkx_reduction(self, medium_dag):
        irredundant, _redundant = transitive_reduction_arcs(medium_dag)
        nxg = nx.DiGraph(list(medium_dag.arcs()))
        expected = set(nx.transitive_reduction(nxg).edges())
        assert irredundant == expected

    def test_chain_has_no_redundant_arcs(self, chain):
        _irredundant, redundant = transitive_reduction_arcs(chain)
        assert redundant == set()

    def test_reduction_preserves_closure(self, small_dag):
        irredundant, _ = transitive_reduction_arcs(small_dag)
        reduced = Digraph.from_arcs(small_dag.num_nodes, irredundant)
        assert transitive_closure_sets(reduced) == transitive_closure_sets(small_dag)


class TestRectangleModel:
    def test_chain_profile(self, chain):
        profile = profile_graph(chain)
        # Levels 6,5,4,3,2,1: H = 21/6 = 3.5; W = 5 arcs / 3.5.
        assert profile.height == pytest.approx(3.5)
        assert profile.width == pytest.approx(5 / 3.5)
        assert profile.max_level == 6

    def test_empty_graph_profile(self):
        profile = profile_graph(Digraph(4))
        assert profile.height == 1.0  # every node is a sink at level 1
        assert profile.width == 0.0
        assert profile.closure_size == 0

    def test_locality_averages(self, diamond):
        profile = profile_graph(diamond)
        # Levels: 0->3, 1->2, 2->2, 3->1.  Arc localities:
        # (0,1)=1, (0,2)=1, (1,3)=1, (2,3)=1, (0,3)=2.
        assert profile.avg_arc_locality == pytest.approx(6 / 5)
        # Irredundant arcs exclude the redundant shortcut (0,3).
        assert profile.avg_irredundant_locality == pytest.approx(1.0)

    @given(
        n=st.integers(min_value=2, max_value=60),
        f=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem1_height_invariance(self, n, f, seed):
        """Theorem 1(1): H(G) = H(TR(G)) = H(TC(G))."""
        graph = generate_dag(n, f, max(1, n // 2), seed=seed)
        profile = profile_graph(graph, include_closure_size=False)

        irredundant, _ = transitive_reduction_arcs(graph)
        reduction = Digraph.from_arcs(n, irredundant)

        closure_arcs = [
            (node, successor)
            for node, bits in transitive_closure_sets(graph).items()
            for successor in bitset_to_nodes(bits)
        ]
        closure_graph = Digraph.from_arcs(n, closure_arcs)

        h = profile.height
        assert profile_graph(reduction, include_closure_size=False).height == pytest.approx(h)
        assert profile_graph(closure_graph, include_closure_size=False).height == pytest.approx(h)

    @given(
        n=st.integers(min_value=2, max_value=60),
        f=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem1_width_ordering(self, n, f, seed):
        """Theorem 1(2): W(TR(G)) <= W(G) <= W(TC(G))."""
        graph = generate_dag(n, f, max(1, n // 2), seed=seed)
        profile = profile_graph(graph, include_closure_size=False)

        irredundant, _ = transitive_reduction_arcs(graph)
        reduction_profile = profile_graph(
            Digraph.from_arcs(n, irredundant), include_closure_size=False
        )
        closure_arcs = [
            (node, successor)
            for node, bits in transitive_closure_sets(graph).items()
            for successor in bitset_to_nodes(bits)
        ]
        closure_profile = profile_graph(
            Digraph.from_arcs(n, closure_arcs), include_closure_size=False
        )
        assert reduction_profile.width <= profile.width + 1e-9
        assert profile.width <= closure_profile.width + 1e-9


class TestBitsetHelpers:
    def test_roundtrip(self):
        bits = (1 << 3) | (1 << 70) | (1 << 128)
        assert bitset_to_nodes(bits) == [3, 70, 128]

    def test_empty(self):
        assert bitset_to_nodes(0) == []
