"""Tests for the sweep checkpoint journal and --resume."""

import dataclasses
import json

import pytest

from repro.chaos.checkpoint import SweepJournal, cell_key
from repro.experiments.run_all import main
from repro.experiments.runner import AveragedMetrics
from repro.obs.record import RunRecord


def _metrics(total_io=100.0):
    rest = {
        f.name: 0.0
        for f in dataclasses.fields(AveragedMetrics)
        if f.name not in ("algorithm", "runs", "total_io")
    }
    return AveragedMetrics(algorithm="btc", runs=1, total_io=total_io, **rest)


def _records():
    return [RunRecord(algorithm="btc", workload={"family": "G1"},
                      metrics={"total_io": 100})]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path)
        journal.record("cell-a", _metrics(), _records())
        assert "cell-a" in journal and len(journal) == 1

        reloaded = SweepJournal(path)
        assert reloaded.loaded == 1
        metrics, records = reloaded.get("cell-a")
        assert metrics == _metrics()
        assert records == _records()

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path)
        journal.record("cell-a", _metrics(), _records())
        journal.record("cell-a", _metrics(999.0), _records())
        assert journal.appended == 1
        assert SweepJournal(path).get("cell-a")[0] == _metrics()

    def test_truncated_final_line_tolerated(self, tmp_path, capsys):
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path)
        journal.record("cell-a", _metrics(), _records())
        journal.record("cell-b", _metrics(), _records())
        # Simulate a kill mid-append: cut the last line in half.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        survivor = SweepJournal(path)
        assert "truncated" in capsys.readouterr().err
        assert "cell-a" in survivor
        assert "cell-b" not in survivor  # simply re-runs on resume

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path)
        journal.record("cell-a", _metrics(), _records())
        good = path.read_text()
        path.write_text("garbage\n" + good)
        with pytest.raises(ValueError, match="corrupt checkpoint line"):
            SweepJournal(path)

    def test_flush_every_batches_durability(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path, flush_every=3) as journal:
            journal.record("cell-a", _metrics(), _records())
            journal.record("cell-b", _metrics(), _records())
            assert journal._pending == 2  # batched, not yet fsynced
            journal.record("cell-c", _metrics(), _records())
            assert journal._pending == 0  # batch boundary flushed
            journal.record("cell-d", _metrics(), _records())
        # close() drains the partial tail batch.
        assert SweepJournal(path).loaded == 4

    def test_flush_every_rejects_non_positive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            SweepJournal(tmp_path / "sweep.journal", flush_every=0)

    def test_torn_final_checkpoint_record_under_batching(self, tmp_path, capsys):
        """A kill that tears the *final* record of a flush_every batch.

        Only the last line may be damaged (whole-line writes), and
        recovery must keep every earlier record of the same batch.
        """
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path, flush_every=4)
        for name in ("cell-a", "cell-b", "cell-c"):
            journal.record(name, _metrics(), _records())
        # Kill before the batch boundary: the OS got whatever the libc
        # buffer held.  Model the worst allowed damage -- everything up
        # to a cut partway through the final record.
        journal._handle.flush()
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        assert len(lines) == 3
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 3])

        survivor = SweepJournal(path)
        assert "truncated" in capsys.readouterr().err
        assert "cell-a" in survivor and "cell-b" in survivor
        assert "cell-c" not in survivor  # simply re-runs on resume
        assert survivor.loaded == 2

    def test_torn_tail_cut_at_newline_boundary_loses_only_that_cell(
        self, tmp_path
    ):
        path = tmp_path / "sweep.journal"
        journal = SweepJournal(path, flush_every=2)
        journal.record("cell-a", _metrics(), _records())
        journal.record("cell-b", _metrics(), _records())  # batch fsynced here
        journal.record("cell-c", _metrics(), _records())
        journal._handle.flush()
        # Tear exactly at the final record's first byte: clean loss.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))

        survivor = SweepJournal(path)
        assert survivor.loaded == 2
        assert "cell-c" not in survivor

    def test_cell_key_is_canonical(self):
        key = cell_key("btc", "G4", None, {"buffer_pages": 20}, {"name": "smoke"})
        assert key == cell_key("btc", "G4", None, {"buffer_pages": 20},
                               {"name": "smoke"})
        assert json.loads(key)["algorithm"] == "btc"
        assert key != cell_key("btc", "G4", 10, {"buffer_pages": 20},
                               {"name": "smoke"})


class TestResume:
    """The acceptance path: kill a sweep, resume it, diff the bytes.

    ``table2``/``figure6`` carry only deterministic counters (the same
    selection the CI diff leg uses), so byte equality is exact.
    """

    ARGS = ["--profile", "smoke", "--only", "table2", "figure8"]
    OUT = "experiments_output_smoke.txt"

    def test_resumed_output_is_byte_identical(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS) == 0
        reference = (tmp_path / self.OUT).read_bytes()

        # "Kill" before the second experiment: journal only figure8's
        # cells (table2 runs no algorithm cells, only graph statistics).
        assert main(["--profile", "smoke", "--only", "figure8",
                     "--resume", "sweep.journal", "--no-file"]) == 0
        journaled = len(SweepJournal(tmp_path / "sweep.journal"))
        assert journaled > 0

        # ...then resume the full sweep against the same journal.
        capsys.readouterr()
        assert main([*self.ARGS, "--resume", "sweep.journal"]) == 0
        assert (tmp_path / self.OUT).read_bytes() == reference
        assert f"{journaled} cell(s) resumed" in capsys.readouterr().out

    def test_journal_grows_only_with_fresh_cells(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--profile", "smoke", "--only", "figure8",
                     "--resume", "sweep.journal", "--no-file"]) == 0
        size = (tmp_path / "sweep.journal").stat().st_size
        assert main(["--profile", "smoke", "--only", "figure8",
                     "--resume", "sweep.journal", "--no-file"]) == 0
        assert (tmp_path / "sweep.journal").stat().st_size == size

    def test_truncated_journal_still_resumes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS) == 0
        reference = (tmp_path / self.OUT).read_bytes()

        assert main([*self.ARGS, "--resume", "sweep.journal", "--no-file"]) == 0
        journal = tmp_path / "sweep.journal"
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(lines[:-1]) + lines[-1][: 40])

        assert main([*self.ARGS, "--resume", "sweep.journal"]) == 0
        assert (tmp_path / self.OUT).read_bytes() == reference
