"""Tests for magic-subgraph identification."""

from repro.graphs.digraph import Digraph
from repro.graphs.magic import magic_subgraph


class TestMagicSubgraph:
    def test_contains_sources(self):
        graph = Digraph.from_arcs(4, [(0, 1)])
        magic = magic_subgraph(graph, [3])
        assert 3 in magic
        assert magic.nodes == {3}

    def test_contains_reachable_nodes_only(self):
        graph = Digraph.from_arcs(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        magic = magic_subgraph(graph, [0])
        assert magic.nodes == {0, 1, 2}

    def test_arc_count_covers_outgoing_arcs_of_magic_nodes(self):
        graph = Digraph.from_arcs(5, [(0, 1), (1, 2), (1, 3), (4, 0)])
        magic = magic_subgraph(graph, [0])
        # Node 4 and its arc (4,0) are outside; the other 3 arcs are in.
        assert magic.num_arcs == 3

    def test_duplicate_sources_collapse(self):
        graph = Digraph.from_arcs(3, [(0, 1)])
        magic = magic_subgraph(graph, [0, 0, 1])
        assert magic.sources == (0, 1)

    def test_multi_source_union(self):
        graph = Digraph.from_arcs(6, [(0, 1), (2, 3)])
        magic = magic_subgraph(graph, [0, 2])
        assert magic.nodes == {0, 1, 2, 3}

    def test_closed_under_successors(self, medium_dag):
        magic = magic_subgraph(medium_dag, [0, 10, 20])
        for node in magic.nodes:
            for child in medium_dag.successors(node):
                assert child in magic
