"""Tests for text table rendering."""

from repro.metrics.report import format_series, format_table


class TestFormatTable:
    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_alignment_and_order(self):
        rows = [{"name": "G1", "io": 123}, {"name": "G2", "io": 7}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["name", "io"]
        assert lines[2].split() == ["G1", "123"]
        assert lines[3].split() == ["G2", "7"]

    def test_title_included(self):
        text = format_table([{"a": 1}], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_explicit_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 5}]
        text = format_table(rows, columns=["a", "b"])
        assert "5" in text

    def test_floats_are_compact(self):
        text = format_table([{"x": 0.333333333}])
        assert "0.3333" in text

    def test_large_integral_floats_stay_exact(self):
        """Averaged I/O counts must not collapse to scientific notation."""
        text = format_table([{"io": 123456.0}])
        assert "123,456" in text
        assert "e+" not in text

    def test_large_fractional_floats_round_to_grouped_integers(self):
        text = format_table([{"io": 123456.7}])
        assert "123,457" in text

    def test_small_integral_floats_render_as_integers(self):
        assert "42" in format_table([{"x": 42.0}])

    def test_small_fractions_keep_four_significant_digits(self):
        assert "0.9985" in format_table([{"x": 0.99854}])


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series(
            "Figure N", xs=[10, 20], series={"BTC": [5, 3], "HYB": [6, 4]}, x_label="M"
        )
        lines = text.splitlines()
        assert lines[0] == "Figure N"
        assert lines[1].split() == ["M", "BTC", "HYB"]
        assert lines[3].split() == ["10", "5", "6"]

    def test_short_series_pad_with_blanks(self):
        text = format_series("t", xs=[1, 2], series={"A": [9]}, x_label="x")
        assert text  # renders without raising
