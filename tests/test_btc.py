"""Tests for the BTC algorithm (Section 3.1)."""

import pytest

from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.errors import CyclicGraphError, InvalidNodeError
from repro.graphs.analysis import transitive_reduction_arcs
from repro.graphs.digraph import Digraph

from conftest import oracle_closure


class TestCorrectness:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = BtcAlgorithm().run(medium_dag)
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_matches_oracle(self, medium_dag):
        sources = [0, 30, 77]
        result = BtcAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        assert set(result.successor_bits) == set(sources)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_diamond(self, diamond):
        result = BtcAlgorithm().run(diamond)
        assert result.successors_of(0) == [1, 2, 3]
        assert result.successors_of(1) == [3]
        assert result.successors_of(3) == []

    def test_empty_graph(self):
        result = BtcAlgorithm().run(Digraph(5))
        assert result.num_tuples == 0

    def test_single_node(self):
        result = BtcAlgorithm().run(Digraph(1))
        assert result.successors_of(0) == []

    def test_cyclic_input_raises(self):
        graph = Digraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(CyclicGraphError):
            BtcAlgorithm().run(graph)

    def test_source_out_of_range_raises(self, small_dag):
        with pytest.raises(InvalidNodeError):
            BtcAlgorithm().run(small_dag, Query.ptc([small_dag.num_nodes]))


class TestMarking:
    def test_marked_arcs_are_exactly_the_redundant_arcs(self, medium_dag):
        """On a topologically sorted DAG the marking optimisation is a
        transitive reduction (Section 3.1, citing [10, 17])."""
        result = BtcAlgorithm().run(medium_dag)
        _irr, redundant = transitive_reduction_arcs(medium_dag)
        assert result.metrics.arcs_marked == len(redundant)
        assert result.metrics.arcs_considered == medium_dag.num_arcs

    def test_unions_equal_irredundant_arcs(self, medium_dag):
        result = BtcAlgorithm().run(medium_dag)
        irredundant, _red = transitive_reduction_arcs(medium_dag)
        assert result.metrics.list_unions == len(irredundant)

    def test_diamond_marks_the_shortcut(self, diamond):
        result = BtcAlgorithm().run(diamond)
        assert result.metrics.arcs_marked == 1


class TestMetrics:
    def test_distinct_tuples_equal_closure_size(self, medium_dag):
        result = BtcAlgorithm().run(medium_dag)
        assert result.metrics.distinct_tuples == result.num_tuples

    def test_output_tuples_for_selection(self, medium_dag):
        sources = [0, 10]
        result = BtcAlgorithm().run(medium_dag, Query.ptc(sources))
        oracle = oracle_closure(medium_dag)
        assert result.metrics.output_tuples == sum(len(oracle[s]) for s in sources)

    def test_duplicates_complement_new_tuples(self, medium_dag):
        """Every generated tuple is either new or a duplicate."""
        metrics = BtcAlgorithm().run(medium_dag).metrics
        new_tuples = metrics.tuples_generated - metrics.duplicates
        # New tuples = closure size minus the immediate successors that
        # were placed during restructuring (they are never re-derived
        # as 'new' by a union: a union only adds the child's list).
        assert 0 <= new_tuples <= metrics.distinct_tuples

    def test_selection_efficiency_is_one_for_full_closure(self, small_dag):
        metrics = BtcAlgorithm().run(small_dag).metrics
        assert metrics.selection_efficiency <= 1.0

    def test_io_decreases_with_buffer_size(self, medium_dag):
        io_small = BtcAlgorithm().run(medium_dag, system=SystemConfig(buffer_pages=5)).metrics.total_io
        io_large = BtcAlgorithm().run(medium_dag, system=SystemConfig(buffer_pages=50)).metrics.total_io
        assert io_large <= io_small

    def test_deterministic_metrics(self, medium_dag):
        a = BtcAlgorithm().run(medium_dag).metrics
        b = BtcAlgorithm().run(medium_dag).metrics
        assert a.total_io == b.total_io
        assert a.tuples_generated == b.tuples_generated

    def test_magic_profile_reported(self, medium_dag):
        result = BtcAlgorithm().run(medium_dag, Query.ptc([0]))
        assert result.magic_nodes >= 1
        assert result.magic_height >= 1.0
        if result.magic_arcs:
            assert result.magic_width > 0
