"""Tests for the Hybrid algorithm (Section 3.2)."""

from repro.core.btc import BtcAlgorithm
from repro.core.hybrid import HybridAlgorithm
from repro.core.query import Query, SystemConfig
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


class TestCorrectness:
    def test_full_closure_matches_oracle(self, medium_dag):
        result = HybridAlgorithm().run(medium_dag, system=SystemConfig(buffer_pages=10))
        oracle = oracle_closure(medium_dag)
        for node in medium_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_selection_matches_oracle(self, medium_dag):
        sources = [3, 40, 90]
        result = HybridAlgorithm().run(
            medium_dag, Query.ptc(sources), SystemConfig(buffer_pages=10, ilimit=0.3)
        )
        oracle = oracle_closure(medium_dag)
        for source in sources:
            assert set(result.successors_of(source)) == oracle[source]

    def test_correct_under_every_ilimit(self, small_dag):
        oracle = oracle_closure(small_dag)
        for ilimit in (0.0, 0.1, 0.2, 0.3, 0.5, 1.0):
            result = HybridAlgorithm().run(
                small_dag, system=SystemConfig(buffer_pages=8, ilimit=ilimit)
            )
            for node in small_dag.nodes():
                assert set(result.successors_of(node)) == oracle[node], ilimit

    def test_correct_under_tiny_buffer(self, small_dag):
        oracle = oracle_closure(small_dag)
        result = HybridAlgorithm().run(
            small_dag, system=SystemConfig(buffer_pages=3, ilimit=0.3)
        )
        for node in small_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]


class TestBlockingBehaviour:
    def test_ilimit_zero_degenerates_to_btc(self, medium_dag):
        """HYB-0 is identical to BTC (Figure 6's legend)."""
        system = SystemConfig(buffer_pages=10, ilimit=0.0)
        hyb = HybridAlgorithm().run(medium_dag, system=system)
        btc = BtcAlgorithm().run(medium_dag, system=SystemConfig(buffer_pages=10))
        assert hyb.metrics.total_io == btc.metrics.total_io
        assert hyb.metrics.list_unions == btc.metrics.list_unions
        assert hyb.metrics.arcs_marked == btc.metrics.arcs_marked

    def test_blocking_misses_marking_opportunities(self):
        """Off-diagonal-first processing expands redundant arcs: HYB
        with blocking marks no more arcs than BTC (Section 6.2)."""
        graph = generate_dag(300, 5, 60, seed=9)
        btc = BtcAlgorithm().run(graph, system=SystemConfig(buffer_pages=10))
        hyb = HybridAlgorithm().run(
            graph, system=SystemConfig(buffer_pages=10, ilimit=0.3)
        )
        assert hyb.metrics.arcs_marked <= btc.metrics.arcs_marked

    def test_blocking_does_not_reduce_io(self):
        """The paper's headline Hybrid finding: blocking does not pay
        off for an algorithm with the immediate successor optimisation."""
        graph = generate_dag(400, 5, 80, seed=10)
        btc_io = BtcAlgorithm().run(graph, system=SystemConfig(buffer_pages=10)).metrics.total_io
        hyb_io = HybridAlgorithm().run(
            graph, system=SystemConfig(buffer_pages=10, ilimit=0.3)
        ).metrics.total_io
        assert hyb_io >= btc_io

    def test_reblocking_under_pressure_is_counted(self):
        """A tiny pool with a large diagonal block must reblock."""
        graph = generate_dag(400, 8, 200, seed=11)
        result = HybridAlgorithm().run(
            graph, system=SystemConfig(buffer_pages=4, ilimit=1.0)
        )
        assert result.metrics.reblocking_events >= 1

    def test_arcs_considered_covers_all_arcs(self, medium_dag):
        result = HybridAlgorithm().run(
            medium_dag, system=SystemConfig(buffer_pages=10, ilimit=0.2)
        )
        assert result.metrics.arcs_considered == medium_dag.num_arcs


class TestExhaustionCleanup:
    def test_escaping_exhaustion_leaves_no_pages_pinned(self):
        """Regression: the unpin sweep must run on the exception path.

        A broom graph gives the root a closure list far larger than a
        two-frame pool, so reblocking bottoms out and the
        BufferPoolExhaustedError escapes ``_expand_block``.  Before the
        sweep moved into the ``finally`` (RPL008), the abort left the
        diagonal block's pages pinned, silently shrinking the pool for
        whatever ran next in the same process.
        """
        import pytest

        from repro.core.base import Phase
        from repro.core.context import ExecutionContext
        from repro.errors import BufferPoolExhaustedError
        from repro.graphs.digraph import Digraph

        n = 1600
        arcs = []
        for mid in range(1, n - 1):
            arcs.append((0, mid))
            arcs.append((mid, n - 1))
        graph = Digraph.from_arcs(n, arcs)

        algo = HybridAlgorithm()
        ctx = ExecutionContext(
            graph,
            Query.full(),
            SystemConfig(buffer_pages=2, ilimit=1.0),
            needs_inverse=algo.needs_inverse,
        )
        ctx.enter_phase(Phase.RESTRUCTURE)
        algo.restructure(ctx)
        ctx.enter_phase(Phase.COMPUTE)
        with pytest.raises(BufferPoolExhaustedError):
            algo.compute(ctx)
        assert ctx.engine.pinned_count == 0
