"""Tests for the streaming SNAP ingestion pipeline.

Covers the loader's input tolerance (comments, blanks, duplicates,
self-loops, gzip), id compaction (sparse integers, string ids, the
``# nodes:`` header), the stream-family registry, and -- via a
hypothesis property suite -- that a graph loaded from an edge list
equals the same arcs built through ``Digraph.from_arcs``.
"""

import gzip
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IngestError
from repro.graphs.digraph import Digraph, DigraphBuilder
from repro.graphs.generator import generate_dag, iter_paper_arcs
from repro.graphs.ingest import (
    STREAM_FAMILIES,
    iter_braided_arcs,
    load_snap,
    stream_family,
    stream_paper_dag,
    write_snap,
)
from repro.graphs.toposort import is_acyclic

FIXTURES = Path(__file__).parent / "fixtures" / "ingest"


class TestLoaderTolerance:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.snap"
        path.write_text("")
        result = load_snap(path)
        assert result.graph.num_nodes == 0
        assert result.graph.num_arcs == 0
        assert result.stats.arc_lines == 0
        assert result.stats.acyclic

    def test_comments_and_blanks_only(self, tmp_path):
        path = tmp_path / "comments.snap"
        path.write_text("# snap comment\n% konect comment\n\n   \n")
        result = load_snap(path)
        assert result.graph.num_nodes == 0
        assert result.stats.comment_lines == 2
        assert result.stats.blank_lines == 2

    def test_duplicate_arcs_are_collapsed_and_counted(self, tmp_path):
        path = tmp_path / "dups.snap"
        path.write_text("0 1\n0 1\n0 1\n1 2\n")
        result = load_snap(path)
        assert result.graph.num_arcs == 2
        assert result.stats.duplicate_arcs == 2
        assert result.stats.arc_lines == 4

    def test_self_loops_are_dropped_and_counted(self, tmp_path):
        path = tmp_path / "loops.snap"
        path.write_text("0 0\n0 1\n1 1\n")
        result = load_snap(path)
        assert result.stats.self_loops == 2
        assert result.graph.num_arcs == 1
        # A self-loop node still exists even with no surviving arcs.
        assert result.graph.num_nodes == 2

    def test_trailing_columns_are_ignored(self, tmp_path):
        path = tmp_path / "weighted.snap"
        path.write_text("0 1 0.75 extra\n1 2 0.25\n")
        result = load_snap(path)
        assert sorted(result.graph.arcs()) == [(0, 1), (1, 2)]

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.snap"
        path.write_text("0 1\n# fine\njustonetoken\n")
        with pytest.raises(IngestError, match="line 3"):
            load_snap(path)
        with pytest.raises(ValueError):  # IngestError is also a ValueError
            load_snap(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_snap(tmp_path / "nope.snap")

    def test_gzip_payload_detected_from_magic_not_name(self, tmp_path):
        # A gzipped file with a non-.gz name still loads.
        path = tmp_path / "misleading.snap"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        result = load_snap(path)
        assert result.graph.num_arcs == 2

    def test_arc_line_accounting_invariant(self, tmp_path):
        path = tmp_path / "mixed.snap"
        path.write_text("# c\n0 1\n0 1\n2 2\n\n1 0\n")
        stats = load_snap(path).stats
        assert stats.arc_lines == (
            stats.arcs + stats.self_loops + stats.duplicate_arcs
        )


class TestIdCompaction:
    def test_dense_ids_load_verbatim(self, tmp_path):
        path = tmp_path / "dense.snap"
        path.write_text("0 1\n1 2\n2 0\n")
        result = load_snap(path)
        assert not result.stats.compacted
        assert result.external_ids is None
        assert result.internal_id(1) == 1
        assert result.external_id(1) == 1

    def test_sparse_integer_ids_compact_in_numeric_order(self, tmp_path):
        path = tmp_path / "sparse.snap"
        path.write_text("100 5\n5 17\n")
        result = load_snap(path)
        assert result.stats.compacted
        assert result.external_ids == (5, 17, 100)
        assert result.internal_id(5) == 0
        assert result.internal_id(100) == 2
        assert result.external_id(1) == 17
        # Arcs are relabelled consistently.
        assert sorted(result.graph.arcs()) == [(0, 1), (2, 0)]

    def test_string_ids_compact_lexicographically(self, tmp_path):
        path = tmp_path / "strings.snap"
        path.write_text("nodeB nodeA\nnodeA nodeC\n")
        result = load_snap(path)
        assert result.external_ids == ("nodeA", "nodeB", "nodeC")
        assert result.internal_id("nodeB") == 1
        with pytest.raises(IngestError, match="not present"):
            result.internal_id("nodeZ")

    def test_leading_zero_tokens_stay_distinct_nodes(self, tmp_path):
        path = tmp_path / "zeros.snap"
        path.write_text("07 7\n7 8\n")
        result = load_snap(path)
        assert result.graph.num_nodes == 3
        assert result.stats.compacted
        # Numeric ties break on the token, deterministically.
        assert result.external_ids == ("07", 7, 8)

    def test_compaction_is_independent_of_arc_order(self, tmp_path):
        a, b = tmp_path / "a.snap", tmp_path / "b.snap"
        a.write_text("30 10\n10 20\n")
        b.write_text("10 20\n30 10\n")
        ra, rb = load_snap(a), load_snap(b)
        assert ra.external_ids == rb.external_ids
        assert ra.graph == rb.graph

    def test_nodes_header_preserves_isolated_nodes(self, tmp_path):
        path = tmp_path / "header.snap"
        path.write_text("# nodes: 5\n0 2\n2 4\n")
        result = load_snap(path)
        assert result.graph.num_nodes == 5
        assert not result.stats.compacted
        assert result.graph.out_degree(1) == 0

    def test_explicit_num_nodes_overrides(self, tmp_path):
        path = tmp_path / "plain.snap"
        path.write_text("0 2\n2 4\n")
        result = load_snap(path, num_nodes=6)
        assert result.graph.num_nodes == 6

    def test_header_too_small_falls_back_to_compaction(self, tmp_path):
        path = tmp_path / "lying.snap"
        path.write_text("# nodes: 2\n0 5\n5 9\n")
        result = load_snap(path)
        assert result.stats.compacted
        assert result.graph.num_nodes == 3

    def test_header_ignored_for_string_ids(self, tmp_path):
        path = tmp_path / "strheader.snap"
        path.write_text("# nodes: 10\nx y\n")
        result = load_snap(path)
        assert result.graph.num_nodes == 2
        assert result.stats.compacted


class TestCyclicInputs:
    def test_cycle_is_recorded(self, tmp_path):
        path = tmp_path / "cycle.snap"
        path.write_text("0 1\n1 2\n2 0\n")
        result = load_snap(path)
        assert not result.stats.acyclic
        assert result.condensation is None

    def test_condense_attaches_condensation(self, tmp_path):
        path = tmp_path / "cycle.snap"
        path.write_text("0 1\n1 2\n2 0\n2 3\n")
        result = load_snap(path, condense=True)
        assert result.stats.condensed
        assert result.stats.components == 2
        assert result.condensation is not None
        assert result.condensation.dag.num_nodes == 2

    def test_condense_is_noop_on_acyclic_input(self, tmp_path):
        path = tmp_path / "dag.snap"
        path.write_text("0 1\n1 2\n")
        result = load_snap(path, condense=True)
        assert result.stats.acyclic
        assert not result.stats.condensed
        assert result.condensation is None


class TestRoundTrip:
    def test_write_then_load_plain(self, tmp_path):
        graph = generate_dag(120, 3, 40, seed=5)
        path = tmp_path / "dag.snap"
        count = write_snap(path, graph.arcs(), comments=("nodes: 120",))
        assert count == graph.num_arcs
        assert load_snap(path).graph == graph

    def test_write_then_load_gzip(self, tmp_path):
        graph = generate_dag(120, 3, 40, seed=5)
        path = tmp_path / "dag.snap.gz"
        write_snap(path, graph.arcs(), comments=("nodes: 120",))
        # Really gzipped on disk.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert load_snap(path).graph == graph

    def test_streamed_paper_dag_equals_generated(self, tmp_path):
        path = tmp_path / "paper.snap"
        write_snap(path, stream_paper_dag(300, 4, 80, seed=9),
                   comments=("nodes: 300",))
        assert load_snap(path).graph == generate_dag(300, 4, 80, seed=9)

    def test_comment_lines_round_trip_as_comments(self, tmp_path):
        path = tmp_path / "c.snap"
        write_snap(path, [(0, 1)], comments=("hello", "world"))
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert load_snap(path).stats.comment_lines == 2


class TestCheckedInFixtures:
    def test_tiny_fixture(self):
        result = load_snap(FIXTURES / "tiny.snap")
        stats = result.stats
        assert stats.nodes == 6
        assert stats.arcs == 5
        assert stats.duplicate_arcs == 1
        assert stats.self_loops == 1
        assert stats.compacted
        assert stats.acyclic
        assert result.external_ids == (5, 10, 17, 42, 100, 205)
        # The diamond: both middle nodes reach the sink.
        sink = result.internal_id(100)
        assert sink in result.graph.successors(result.internal_id(10))
        assert sink in result.graph.successors(result.internal_id(17))

    def test_string_id_fixture(self):
        result = load_snap(FIXTURES / "tiny_string_ids.snap")
        assert result.stats.compacted
        assert result.external_ids == ("n42", "n42x", "n7", "n9")

    def test_braid_fixture_gz(self):
        result = load_snap(FIXTURES / "braid_small.snap.gz")
        assert result.graph.num_nodes == 200
        assert not result.stats.compacted
        assert result.stats.acyclic
        assert result.stats.duplicate_arcs == 0


class TestStreamGenerators:
    def test_braid_is_deterministic(self):
        a = list(iter_braided_arcs(3, 30, seed=4))
        b = list(iter_braided_arcs(3, 30, seed=4))
        assert a == b
        assert a != list(iter_braided_arcs(3, 30, seed=5))

    def test_braid_has_no_duplicates_or_self_loops(self):
        arcs = list(iter_braided_arcs(4, 60, shortcuts_per_node=3, seed=1))
        assert len(arcs) == len(set(arcs))
        assert all(src != dst for src, dst in arcs)

    def test_braid_is_acyclic_with_contiguous_nodes(self):
        num_nodes = 5 * 40
        builder = DigraphBuilder(num_nodes)
        builder.add_arcs(iter_braided_arcs(5, 40, seed=2))
        graph = builder.freeze()
        assert is_acyclic(graph)
        # Every node is on a chain: no isolated nodes.
        assert all(
            graph.out_degree(node) or graph.in_degree(node)
            for node in graph.nodes()
        )

    def test_braid_chain_arcs_always_present(self):
        arcs = set(iter_braided_arcs(2, 10, shortcuts_per_node=0,
                                     cross_links_per_chain=0, seed=0))
        expected = {(i, i + 1) for i in range(9)} | {
            (10 + i, 11 + i) for i in range(9)
        }
        assert arcs == expected

    def test_braid_validation(self):
        with pytest.raises(ConfigurationError):
            next(iter_braided_arcs(0, 10))
        with pytest.raises(ConfigurationError):
            next(iter_braided_arcs(2, 1))
        with pytest.raises(ConfigurationError):
            next(iter_braided_arcs(2, 10, shortcut_span=1))
        with pytest.raises(ConfigurationError):
            next(iter_braided_arcs(2, 10, shortcuts_per_node=-1))

    def test_paper_stream_matches_generator_module(self):
        assert list(stream_paper_dag(100, 3, 20, seed=6)) == list(
            iter_paper_arcs(100, 3, 20, seed=6)
        )


class TestStreamFamilies:
    def test_registry_lookup_is_case_insensitive(self):
        assert stream_family("BRAID-10K") is stream_family("braid-10k")

    def test_unknown_family_lists_valid_names(self):
        with pytest.raises(ConfigurationError, match="braid-10k"):
            stream_family("nope")

    def test_family_names_are_unique(self):
        names = [family.name for family in STREAM_FAMILIES]
        assert len(names) == len(set(names))

    def test_smallest_family_writes_and_loads(self, tmp_path):
        family = stream_family("paper-2k")
        path = tmp_path / "fam.snap.gz"
        family.write(path)
        result = load_snap(path)
        assert result.graph.num_nodes == family.num_nodes
        assert not result.stats.compacted
        assert result.graph == generate_dag(2000, 5, 200, seed=0)


@st.composite
def arc_lists(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=30))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ),
            max_size=80,
        )
    )
    return num_nodes, arcs


class TestLoadedEqualsBuilt:
    @given(arc_lists())
    @settings(max_examples=60, deadline=None)
    def test_loaded_graph_equals_from_arcs(self, tmp_path_factory, case):
        num_nodes, arcs = case
        clean = [(u, v) for u, v in arcs if u != v]
        path = tmp_path_factory.mktemp("prop") / "g.snap"
        write_snap(path, arcs, comments=(f"nodes: {num_nodes}",))
        result = load_snap(path)
        assert result.graph == Digraph.from_arcs(num_nodes, clean)
        assert result.stats.self_loops == len(arcs) - len(clean)
        assert result.stats.duplicate_arcs == len(clean) - len(set(clean))
