"""Tests for the resilient serve layer (no chaos; see test_serve_chaos).

Covers the shared backoff policy (including behaviour-identity with the
experiment engine's old inline implementation), the circuit breaker,
the checksummed single-flight cache, request validation, the service's
admission/deadline/degradation behaviour, and the HTTP front end over
both TCP and UNIX-domain sockets.
"""

import asyncio
import random

import pytest

from repro.core.query import SystemConfig
from repro.errors import InvalidNodeError
from repro.experiments.parallel import DEFAULT_BACKOFF, ExperimentEngine
from repro.graphs.generator import generate_dag
from repro.graphs.toposort import reachable_from
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.http import ServeClient, ServeServer
from repro.serve.retry import (
    DEFAULT_BACKOFF_SEED,
    BackoffPolicy,
    retry_call,
)
from repro.serve.service import (
    IndexUnavailableError,
    InvalidRequestError,
    OverloadedError,
    ReachabilityService,
    ServeConfig,
)
from repro.serve.validate import parse_node_id, parse_probe


@pytest.fixture
def graph():
    return generate_dag(120, 2.0, 15, seed=5)


def make_service(graph, **overrides):
    config = ServeConfig(**overrides) if overrides else ServeConfig()
    return ReachabilityService(
        graph, system=SystemConfig(engine="fast"), config=config
    )


async def built_service(graph, **overrides):
    service = make_service(graph, **overrides)
    assert await service.build()
    return service


# -- retry policy -------------------------------------------------------------


class TestBackoffPolicy:
    def test_matches_the_historical_inline_formula(self):
        """The extracted policy reproduces parallel.py's old delays exactly."""
        policy = BackoffPolicy(base=0.05)
        rng = random.Random(DEFAULT_BACKOFF_SEED)
        for attempt in range(2, 12):
            expected = 0.05 * (2 ** (attempt - 2)) * (0.5 + rng.random())
            assert policy.delay(attempt) == pytest.approx(expected)

    def test_experiment_engine_uses_the_shared_policy(self):
        engine = ExperimentEngine(backoff=DEFAULT_BACKOFF)
        reference = BackoffPolicy(base=DEFAULT_BACKOFF)
        got = [engine._retry_delay(a) for a in (2, 3, 4)]
        want = [reference.delay(a) for a in (2, 3, 4)]
        assert got == want

    def test_zero_base_sleeps_nothing_and_draws_nothing(self):
        policy = BackoffPolicy(base=0.0)
        assert policy.delay(2) == 0.0
        # The jitter stream must be untouched: a later re-seed check.
        assert policy._rng.random() == random.Random(DEFAULT_BACKOFF_SEED).random()

    def test_delays_grow_exponentially_and_respect_the_cap(self):
        policy = BackoffPolicy(base=1.0, max_delay=3.0)
        delays = [policy.delay(a) for a in range(2, 9)]
        assert all(d <= 3.0 for d in delays)
        uncapped = BackoffPolicy(base=1.0)
        raw = [uncapped.delay(a) for a in range(2, 9)]
        assert raw[-1] > raw[0]  # exponential growth before the cap

    def test_deterministic_across_instances(self):
        a = BackoffPolicy(base=0.1)
        b = BackoffPolicy(base=0.1)
        assert [a.delay(i) for i in (2, 3, 4)] == [b.delay(i) for i in (2, 3, 4)]

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_delay=-1.0)


class TestRetryCall:
    def test_returns_after_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        result = retry_call(
            flaky, retries=3, policy=BackoffPolicy(base=0.01),
            sleep=slept.append,
        )
        assert result == "done"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_exhausted_retries_propagate_the_real_error(self):
        def doomed():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            retry_call(doomed, retries=2, policy=BackoffPolicy(base=0),
                       sleep=lambda _s: None)

    def test_retry_on_filters_exception_types(self):
        def wrong_kind():
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(wrong_kind, retries=5, policy=BackoffPolicy(base=0),
                       retry_on=OSError, sleep=lambda _s: None)

    def test_on_retry_observes_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("again")
            return 42

        retry_call(flaky, retries=5, policy=BackoffPolicy(base=0),
                   sleep=lambda _s: None,
                   on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [2, 3]


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_after=10.0, clock=lambda: 0.0)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_half_opens_and_probe_outcome_decides(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, reset_after=5.0, clock=lambda: now[0])
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        now[0] = 5.0
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        # Failed probe re-opens immediately and restarts the cool-down.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        now[0] = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_snapshot_is_json_safe(self):
        breaker = CircuitBreaker()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["failures"] == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=-1.0)


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refreshes a's recency
        cache.put("c", 3)  # evicts b
        assert cache.get("b") == (False, None)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_poisoned_entry_is_detected_and_dropped(self):
        cache = ResultCache(size=4)
        cache.put("k", [1, 2, 3])
        value, checksum = cache._entries["k"]
        cache._entries["k"] = ([1, 2, 99], checksum)  # in-place corruption
        hit, _ = cache.get("k")
        assert not hit
        assert cache.poison_detected == 1
        assert "k" not in cache._entries

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(size=0)
        cache.put("k", 1)
        assert cache.get("k") == (False, None)

    def test_single_flight_coalesces_concurrent_lookups(self):
        async def run():
            cache = ResultCache(size=8)
            calls = []

            async def supplier():
                calls.append(1)
                await asyncio.sleep(0.01)
                return "value"

            results = await asyncio.gather(
                *(cache.get_or_compute("k", supplier) for _ in range(5))
            )
            assert results == ["value"] * 5
            assert len(calls) == 1
            assert cache.coalesced == 4

        asyncio.run(run())

    def test_supplier_failure_propagates_and_caches_nothing(self):
        async def run():
            cache = ResultCache(size=8)

            async def boom():
                raise RuntimeError("compute failed")

            with pytest.raises(RuntimeError):
                await cache.get_or_compute("k", boom)
            assert cache.get("k") == (False, None)

            async def fine():
                return "recovered"

            assert await cache.get_or_compute("k", fine) == "recovered"

        asyncio.run(run())


# -- validation ---------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize("raw,expected", [(0, 0), (7, 7), ("7", 7), (" 7", 7)])
    def test_accepts_ints_and_int_strings(self, raw, expected):
        assert parse_node_id(raw, 10) == expected

    @pytest.mark.parametrize("raw", ["abc", "1.5", 1.5, None, True, [], -1, 10, "10"])
    def test_rejects_malformed_and_out_of_range(self, raw):
        with pytest.raises(InvalidNodeError):
            parse_node_id(raw, 10)

    def test_error_names_the_parameter_and_range(self):
        with pytest.raises(InvalidNodeError, match=r"v=99 .* 0\.\.9"):
            parse_node_id(99, 10, name="v")

    def test_parse_probe(self):
        assert parse_probe("3:4", 10) == (3, 4)
        with pytest.raises(InvalidNodeError, match="malformed"):
            parse_probe("34", 10)
        with pytest.raises(InvalidNodeError):
            parse_probe("3:99", 10)


# -- the service --------------------------------------------------------------


class TestReachabilityService:
    def test_answers_match_the_oracle(self, graph):
        async def run():
            service = await built_service(graph)
            rng = random.Random(0)
            for _ in range(100):
                u = rng.randrange(graph.num_nodes)
                v = rng.randrange(graph.num_nodes)
                answer = await service.reachable(u, v)
                expected = v != u and v in reachable_from(graph, [u])
                assert answer["reachable"] == expected
                assert answer["degraded"] is False
            successors = await service.successors(5)
            assert sorted(successors["successors"]) == sorted(
                n for n in reachable_from(graph, [5]) if n != 5
            )

        asyncio.run(run())

    def test_engine_parity(self, graph):
        async def run():
            fast = await built_service(graph)
            paged = ReachabilityService(graph, system=SystemConfig(engine="paged"))
            assert await paged.build()
            for u, v in [(0, 50), (3, 80), (10, 11), (100, 5)]:
                assert (await fast.reachable(u, v)) == (await paged.reachable(u, v))

        asyncio.run(run())

    def test_unbuilt_service_reports_unavailable(self, graph):
        async def run():
            service = make_service(graph)
            assert service.state == "unready"
            with pytest.raises(IndexUnavailableError):
                await service.reachable(0, 1)

        asyncio.run(run())

    def test_invalid_node_ids_raise_structured_errors(self, graph):
        async def run():
            service = await built_service(graph)
            with pytest.raises(InvalidNodeError, match="u must be an integer"):
                await service.reachable("abc", 1)
            with pytest.raises(InvalidNodeError, match="outside the graph's range"):
                await service.successors(10_000)

        asyncio.run(run())

    def test_batch_answers_and_validates(self, graph):
        async def run():
            service = await built_service(graph)
            payload = await service.batch(
                [
                    {"op": "reachable", "u": 0, "v": 90},
                    {"op": "successors", "u": 4},
                ]
            )
            expected = 90 in reachable_from(graph, [0])
            assert payload["results"][0] == {"reachable": expected}
            assert set(payload["results"][1]) == {"successors"}
            with pytest.raises(InvalidRequestError, match="unknown op"):
                await service.batch([{"op": "teleport", "u": 0}])

        asyncio.run(run())

    def test_admission_sheds_when_the_queue_is_full(self, graph):
        async def run():
            service = await built_service(graph, max_concurrency=1, max_queue=0)
            async with service.admitted():
                with pytest.raises(OverloadedError) as info:
                    async with service.admitted():
                        pass  # pragma: no cover
            assert info.value.retry_after >= 0.05
            assert service.telemetry.count("shed") == 1

        asyncio.run(run())

    def test_queries_hit_the_cache(self, graph):
        async def run():
            service = await built_service(graph)
            await service.reachable(0, 90)
            await service.reachable(0, 90)
            assert service.cache.hits == 1
            assert service.cache.misses == 1

        asyncio.run(run())

    def test_breaker_trip_degrades_then_recovery_restores(self, graph):
        """ready -> degraded (breaker open, last-good index) -> ready."""
        now = [0.0]
        config = ServeConfig(
            breaker_threshold=2, breaker_reset_s=5.0, build_retries=0,
            backoff_base_s=0.0,
        )
        service = ReachabilityService(
            graph, system=SystemConfig(engine="fast"), config=config,
            clock=lambda: now[0],
        )

        async def run():
            assert await service.build()
            assert service.state == "ready"
            baseline = await service.reachable(0, 90)

            # Break the build path: refreshes fail, the breaker trips.
            original = service._build_index_sync
            service._build_index_sync = lambda: (_ for _ in ()).throw(
                RuntimeError("storage down")
            )
            assert not await service.build()
            assert not await service.build()
            assert service.breaker.state is BreakerState.OPEN
            assert service.state == "degraded"

            # Stale-while-revalidate: the last-good index still answers,
            # flagged degraded, and the value is unchanged.
            answer = await service.reachable(0, 90)
            assert answer["reachable"] == baseline["reachable"]
            assert answer["degraded"] is True

            # While open, rebuild attempts are refused without storage work.
            assert not await service.build()
            assert service.telemetry.count("breaker_refusals") == 1

            # Cool-down elapses; the healed build path closes the breaker.
            service._build_index_sync = original
            now[0] = 5.0
            assert service.breaker.state is BreakerState.HALF_OPEN
            assert await service.build()
            assert service.state == "ready"
            assert (await service.reachable(0, 90))["degraded"] is False

        asyncio.run(run())

    def test_build_retries_use_the_backoff_policy(self, graph):
        async def run():
            attempts = []
            service = await_none = None
            service = make_service(
                graph, build_retries=2, backoff_base_s=0.0, breaker_threshold=10
            )
            original = service._build_index_sync

            def flaky():
                attempts.append(1)
                if len(attempts) < 3:
                    raise RuntimeError("transient storage fault")
                return original()

            service._build_index_sync = flaky
            assert await service.build()
            assert len(attempts) == 3
            assert service.telemetry.count("rebuild_retries") == 2
            assert service.telemetry.count("rebuild_failures") == 2
            assert service.state == "ready"
            assert await_none is None

        asyncio.run(run())

    def test_run_record_export(self, graph):
        async def run():
            service = await built_service(graph)
            await service.reachable(0, 1)
            record = service.to_run_record({"nodes": graph.num_nodes})
            assert record.algorithm == "serve"
            assert record.metrics["index_k"] == service.index.k
            assert "latency_p99_ms" in record.metrics
            assert record.workload == {"nodes": graph.num_nodes}

        asyncio.run(run())


# -- the HTTP front end -------------------------------------------------------


async def start_server(graph, uds=None, **overrides):
    service = await built_service(graph, **overrides)
    server = ServeServer(service, uds=uds) if uds else ServeServer(service)
    await server.start()
    client = ServeClient(uds=uds) if uds else ServeClient(port=server.port)
    return service, server, client


class TestHTTPServer:
    def test_tcp_round_trip_matches_oracle(self, graph):
        async def run():
            service, server, client = await start_server(graph)
            try:
                rng = random.Random(1)
                for _ in range(25):
                    u = rng.randrange(graph.num_nodes)
                    v = rng.randrange(graph.num_nodes)
                    status, payload = await client.reachable(u, v)
                    assert status == 200
                    expected = v != u and v in reachable_from(graph, [u])
                    assert payload["reachable"] == expected
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_uds_round_trip_and_health(self, graph, tmp_path):
        async def run():
            uds = str(tmp_path / "serve.sock")
            service, server, client = await start_server(graph, uds=uds)
            try:
                status, payload = await client.successors(3)
                assert status == 200
                assert sorted(payload["successors"]) == sorted(
                    n for n in reachable_from(graph, [3]) if n != 3
                )
                status, health = await client.get("/healthz")
                assert status == 200 and health["status"] == "ok"
                assert health["index"]["num_nodes"] == graph.num_nodes
                status, ready = await client.get("/readyz")
                assert status == 200 and ready["state"] == "ready"
                status, stats = await client.get("/stats")
                assert status == 200 and stats["answered"] >= 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_bad_requests_get_structured_400s(self, graph):
        async def run():
            service, server, client = await start_server(graph)
            try:
                status, _, payload = await client.request(
                    "GET", "/reachable?u=abc&v=1"
                )
                assert status == 400 and "integer node id" in payload["error"]
                status, _, payload = await client.request(
                    "GET", f"/reachable?u=0&v={graph.num_nodes}"
                )
                assert status == 400 and "range" in payload["error"]
                status, _, payload = await client.request("GET", "/nope")
                assert status == 404
                status, _, payload = await client.request("POST", "/reachable?u=0&v=1")
                assert status == 405
                status, payload = await client.batch([{"op": "warp", "u": 0}])
                assert status == 400 and "unknown op" in payload["error"]
                assert service.telemetry.count("invalid_requests") >= 3
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_deadline_expiry_is_a_structured_504(self, graph, monkeypatch):
        async def run():
            service, server, client = await start_server(graph)

            async def slow_faults():
                await asyncio.sleep(0.2)

            monkeypatch.setattr(service, "_handler_faults", slow_faults)
            try:
                status, payload = await client.reachable(0, 1, deadline_ms=20)
                assert status == 504
                assert payload["deadline_ms"] == 20
                assert service.telemetry.count("deadline_timeouts") == 1
                # The server survives and answers the next request.
                monkeypatch.undo()
                status, _ = await client.reachable(0, 1)
                assert status == 200
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_overload_sheds_with_retry_after(self, graph, monkeypatch):
        async def run():
            service, server, client = await start_server(
                graph, max_concurrency=1, max_queue=1
            )

            async def slow_faults():
                await asyncio.sleep(0.3)

            monkeypatch.setattr(service, "_handler_faults", slow_faults)
            try:
                tasks = [
                    asyncio.create_task(
                        ServeClient(port=server.port).request(
                            "GET", "/reachable?u=0&v=1"
                        )
                    )
                    for _ in range(6)
                ]
                responses = await asyncio.gather(*tasks)
                statuses = sorted(status for status, _h, _p in responses)
                assert 503 in statuses  # some requests shed...
                assert 200 in statuses  # ...while admitted ones answer
                shed = [r for r in responses if r[0] == 503]
                assert all("retry-after" in r[1] for r in shed)
                assert all(r[2].get("shed") for r in shed)
                assert service.telemetry.count("shed") >= 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_refresh_endpoint_rebuilds(self, graph):
        async def run():
            service, server, client = await start_server(graph)
            try:
                status, payload = await client.refresh()
                assert status == 200
                assert payload == {"rebuilt": True, "state": "ready"}
                assert service.telemetry.count("rebuilds") == 2
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_readyz_reports_degraded_over_http(self, graph):
        async def run():
            service, server, client = await start_server(graph)
            try:
                service._build_index_sync = lambda: (_ for _ in ()).throw(
                    RuntimeError("storage down")
                )
                for _ in range(service.config.breaker_threshold):
                    await client.refresh()
                status, ready = await client.get("/readyz")
                assert status == 503 and ready["state"] == "degraded"
                # Still answering, flagged degraded.
                status, payload = await client.reachable(0, 90)
                assert status == 200 and payload["degraded"] is True
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())
