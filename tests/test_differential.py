"""Differential correctness battery: every implementation, one answer.

Over a seeded grid of random DAG families, every framework algorithm
(BTC, HYB, BJ, SRCH, SPN, JKB, JKB2, CHAINS) and every in-memory baseline
(warshall, warren, seminaive, smart, schmitz) must produce exactly the
same closure tuple set, for both complete (CTC) and partial (PTC)
transitive closure queries.  The networkx reachability oracle anchors
the comparison so a bug shared by all implementations cannot hide.

This is the safety net under the parallel experiment engine: the
engine's bit-identical guarantee is only meaningful if every executor
of a work unit computes the same relation to begin with.

The whole grid runs under BOTH storage engines: the paper-faithful
``paged`` substrate and the in-memory ``fast`` backend must produce
the same closure tuple sets (the fast engine only drops the page-cost
simulation, never the answer).
"""

import networkx as nx
import pytest

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.core.chains import build_chain_index
from repro.core.query import Query, SystemConfig
from repro.core.registry import ALGORITHM_NAMES, make_algorithm
from repro.graphs.generator import generate_dag
from repro.storage.engine import ENGINE_NAMES


def oracle_closure(graph):
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(graph.arcs())
    return {node: set(nx.descendants(nxg, node)) for node in nxg.nodes}

# (num_nodes, avg_out_degree, locality, graph_seed, buffer_pages):
# shapes span sparse/deep, dense/shallow, high- and low-locality
# families, and tight as well as comfortable buffer pools.
DAG_GRID = [
    (40, 3, 10, 0, 5),
    (60, 2, 55, 1, 10),
    (50, 5, 12, 2, 3),
    (35, 4, 35, 3, 20),
    (25, 6, 25, 4, 10),
]

FULL_CLOSURE_ALGOS = tuple(n for n in ALGORITHM_NAMES if n != "srch")
ALL_RUNNERS = tuple(ALGORITHM_NAMES) + tuple(BASELINE_NAMES)


def _make(name: str):
    return make_baseline(name) if name in BASELINE_NAMES else make_algorithm(name)


def _answer(
    name: str, graph, query, buffer_pages: int, engine: str = "paged"
) -> set[tuple[int, int]]:
    system = SystemConfig(buffer_pages=buffer_pages, engine=engine)
    result = _make(name).run(graph, query, system)
    return set(result.tuples())


def _expected_tuples(graph, sources=None) -> set[tuple[int, int]]:
    closure = oracle_closure(graph)
    nodes = range(graph.num_nodes) if sources is None else sources
    return {(node, succ) for node in nodes for succ in closure[node]}


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("n,f,loc,seed,buffer_pages", DAG_GRID)
def test_full_closure_all_implementations_agree(n, f, loc, seed, buffer_pages, engine):
    graph = generate_dag(n, f, loc, seed=seed)
    expected = _expected_tuples(graph)
    for name in FULL_CLOSURE_ALGOS + tuple(BASELINE_NAMES):
        answer = _answer(name, graph, Query.full(), buffer_pages, engine)
        assert answer == expected, (
            f"{name} diverges from the oracle on CTC "
            f"(n={n}, F={f}, l={loc}, seed={seed}, M={buffer_pages}, "
            f"engine={engine}): "
            f"missing={sorted(expected - answer)[:5]} "
            f"extra={sorted(answer - expected)[:5]}"
        )


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("n,f,loc,seed,buffer_pages", DAG_GRID)
@pytest.mark.parametrize("selectivity", [1, 4])
def test_partial_closure_all_implementations_agree(
    n, f, loc, seed, buffer_pages, selectivity, engine
):
    import random

    graph = generate_dag(n, f, loc, seed=seed)
    sources = tuple(random.Random(900 + seed).sample(range(n), selectivity))
    query = Query.ptc(sources)
    expected = _expected_tuples(graph, sources)
    for name in ALL_RUNNERS:
        answer = _answer(name, graph, query, buffer_pages, engine)
        assert answer == expected, (
            f"{name} diverges from the oracle on PTC s={selectivity} "
            f"(n={n}, F={f}, l={loc}, seed={seed}, M={buffer_pages}, "
            f"engine={engine})"
        )


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("n,f,loc,seed,buffer_pages", DAG_GRID)
def test_chain_index_matches_oracle(n, f, loc, seed, buffer_pages, engine):
    """The frozen ChainIndex answers the same reachability relation.

    ``build_chain_index`` goes through a different query path than the
    materialised ``ClosureResult`` -- ``reachable`` probes k-vectors and
    ``successors`` expands chain suffixes on demand -- so it gets its
    own leg of the differential battery rather than riding on the
    ``chains`` row above.
    """
    graph = generate_dag(n, f, loc, seed=seed)
    closure = oracle_closure(graph)
    index = build_chain_index(
        graph, system=SystemConfig(buffer_pages=buffer_pages, engine=engine)
    )
    for node in range(n):
        assert index.successors(node) == sorted(closure[node]), (
            f"ChainIndex.successors({node}) diverges from the oracle "
            f"(n={n}, F={f}, l={loc}, seed={seed}, M={buffer_pages}, "
            f"engine={engine})"
        )
        for other in range(n):
            assert index.reachable(node, other) == (other in closure[node])


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_answers_are_restricted_to_the_sources(engine):
    """PTC answers must not leak successor lists of non-source nodes."""
    graph = generate_dag(30, 3, 10, seed=7)
    query = Query.ptc((2, 11))
    for name in ALL_RUNNERS:
        result = _make(name).run(
            graph, query, SystemConfig(buffer_pages=5, engine=engine)
        )
        assert set(result.successor_bits) == set(query.sources), name
