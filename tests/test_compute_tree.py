"""Tests for the Compute_Tree algorithm, JKB and JKB2 (Section 3.6)."""

from repro.core.btc import BtcAlgorithm
from repro.core.compute_tree import ComputeTreeAlgorithm
from repro.core.query import Query, SystemConfig
from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag

from conftest import oracle_closure


def jkb2() -> ComputeTreeAlgorithm:
    return ComputeTreeAlgorithm(dual_representation=True)


def jkb() -> ComputeTreeAlgorithm:
    return ComputeTreeAlgorithm(dual_representation=False)


class TestCorrectness:
    def test_selection_matches_oracle(self, medium_dag):
        sources = [0, 12, 88, 120]
        oracle = oracle_closure(medium_dag)
        for algorithm in (jkb(), jkb2()):
            result = algorithm.run(medium_dag, Query.ptc(sources))
            for source in sources:
                assert set(result.successors_of(source)) == oracle[source]

    def test_full_closure_matches_oracle(self, small_dag):
        oracle = oracle_closure(small_dag)
        result = jkb2().run(small_dag)
        for node in small_dag.nodes():
            assert set(result.successors_of(node)) == oracle[node]

    def test_deep_chain_does_not_overflow(self):
        """Special trees can be ~2|S| deep; the merge must be iterative."""
        n = 3000
        graph = Digraph.from_arcs(n, [(i, i + 1) for i in range(n - 1)])
        sources = list(range(0, n, 2))  # every other node: deep source chain
        result = jkb2().run(graph, Query.ptc(sources), SystemConfig(buffer_pages=50))
        assert set(result.successors_of(0)) == set(range(1, n))

    def test_source_inside_anothers_closure(self):
        graph = Digraph.from_arcs(4, [(0, 1), (1, 2), (2, 3)])
        result = jkb2().run(graph, Query.ptc([0, 2]))
        assert result.successors_of(0) == [1, 2, 3]
        assert result.successors_of(2) == [3]


class TestSpecialTrees:
    def test_tree_size_bounded_by_twice_the_sources(self, medium_dag):
        """|T(x)| <= 2|S| - 1 (Section 3.6)."""
        sources = [0, 7, 23, 51, 90]
        algorithm = jkb2()
        algorithm.run(medium_dag, Query.ptc(sources))
        bound = 2 * len(sources) - 1
        assert all(tree.size <= bound for tree in algorithm._trees.values())

    def test_trees_contain_only_special_nodes(self):
        """Non-source interior nodes appear only as branch points."""
        # 0 -> 1 -> 3, 2 -> 3 with sources {0, 2}: node 1 is a pass-
        # through (never special), node 3's tree holds the two sources.
        graph = Digraph.from_arcs(4, [(0, 1), (1, 3), (2, 3)])
        algorithm = jkb2()
        algorithm.run(graph, Query.ptc([0, 2]))
        tree3 = algorithm._trees[3]
        assert 1 not in tree3.ids
        assert {0, 2} <= tree3.ids

    def test_branch_node_created_where_sources_meet(self):
        """The meeting node of unrelated sources becomes special."""
        # 0 -> 2, 1 -> 2, 2 -> 3; sources {0, 1} first meet at node 2.
        graph = Digraph.from_arcs(4, [(0, 2), (1, 2), (2, 3)])
        algorithm = jkb2()
        algorithm.run(graph, Query.ptc([0, 1]))
        assert 2 in algorithm._trees[2].ids
        # Node 3 inherits the joined tree without a new branch node.
        assert 3 not in algorithm._trees[3].ids


class TestCostCharacter:
    def test_marking_almost_never_applies(self):
        """Figure 11: the marking percentage of JKB2 is near zero."""
        graph = generate_dag(300, 5, 60, seed=31)
        result = jkb2().run(graph, Query.ptc([0, 5, 10, 20, 40]))
        assert result.metrics.marking_percentage < 0.05

    def test_more_unions_than_btc(self):
        """Figure 10: poor marking utilisation costs JKB2 unions."""
        graph = generate_dag(300, 5, 60, seed=32)
        query = Query.ptc([0, 5, 10, 20, 40])
        jkb_unions = jkb2().run(graph, query).metrics.list_unions
        btc_unions = BtcAlgorithm().run(graph, query).metrics.list_unions
        assert jkb_unions >= btc_unions

    def test_far_fewer_tuples_generated_than_btc(self):
        """Figure 9: JKB2 generates a small fraction of BTC's tuples."""
        graph = generate_dag(400, 5, 80, seed=33)
        query = Query.ptc([0, 3, 9])
        jkb_tc = jkb2().run(graph, query).metrics.tuples_generated
        btc_tc = BtcAlgorithm().run(graph, query).metrics.tuples_generated
        assert jkb_tc < btc_tc / 5

    def test_jkb_preprocessing_costs_more_than_jkb2(self):
        """Without the dual representation, predecessor lists cost one
        scattered page access per arc (Figure 7(a)'s JKB blow-up).

        The effect needs a relation larger than the buffer pool, so the
        scattered probes actually miss.
        """
        graph = generate_dag(1000, 10, 500, seed=34)
        query = Query.ptc(list(range(10)))
        system = SystemConfig(buffer_pages=10)
        from repro.storage.iostats import Phase

        io_jkb = jkb().run(graph, query, system).metrics.io
        io_jkb2 = jkb2().run(graph, query, system).metrics.io
        assert io_jkb.reads_in(Phase.RESTRUCTURE) > io_jkb2.reads_in(Phase.RESTRUCTURE)

    def test_becomes_memory_resident_with_big_buffer(self):
        """Figure 13: JKB2's tiny trees fit in a grown buffer pool and
        its computation-phase I/O nearly vanishes."""
        graph = generate_dag(400, 5, 80, seed=35)
        query = Query.ptc([0, 2, 4, 6, 8, 10, 12, 14, 16, 18])
        from repro.storage.iostats import Phase

        def compute_io(buffer_pages: int) -> int:
            metrics = jkb2().run(graph, query, SystemConfig(buffer_pages=buffer_pages)).metrics
            return metrics.io.reads_in(Phase.COMPUTE)

        assert compute_io(50) <= compute_io(5)
        assert compute_io(50) <= 2
