"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.digraph import Digraph
from repro.graphs.generator import generate_dag


def oracle_closure(graph: Digraph) -> dict[int, set[int]]:
    """Reference transitive closure computed with networkx."""
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(graph.arcs())
    return {node: set(nx.descendants(nxg, node)) for node in nxg.nodes}


@pytest.fixture
def diamond() -> Digraph:
    """The diamond DAG 0 -> {1, 2} -> 3, plus the shortcut 0 -> 3.

    The shortcut arc is redundant (it is outside the transitive
    reduction), making this the smallest graph that exercises the
    marking optimisation.
    """
    return Digraph.from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])


@pytest.fixture
def chain() -> Digraph:
    """A 6-node path 0 -> 1 -> ... -> 5 (every node single-parent)."""
    return Digraph.from_arcs(6, [(i, i + 1) for i in range(5)])


@pytest.fixture
def small_dag() -> Digraph:
    """A reproducible 60-node random DAG used across algorithm tests."""
    return generate_dag(60, avg_out_degree=3, locality=15, seed=42)


@pytest.fixture
def medium_dag() -> Digraph:
    """A reproducible 150-node random DAG for integration tests."""
    return generate_dag(150, avg_out_degree=4, locality=40, seed=7)
