"""Tests for page-access tracing and the access patterns it reveals."""

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IoStats
from repro.storage.page import PageId, PageKind
from repro.storage.relation import ArcRelation
from repro.storage.trace import PageTrace, TracedPool, TraceEvent


def page(number: int, kind: PageKind = PageKind.SUCCESSOR) -> PageId:
    return PageId(kind, number)


class TestAttachedTrace:
    def test_records_hits_and_misses_in_order(self):
        trace = PageTrace()
        pool = BufferPool(2, stats=trace.attach(IoStats()))
        pool.access(page(0))
        pool.access(page(0))
        pool.access(page(1))
        events = [record.event for record in trace.records]
        assert events == [
            TraceEvent.REQUEST_MISS,
            TraceEvent.READ,
            TraceEvent.REQUEST_HIT,
            TraceEvent.REQUEST_MISS,
            TraceEvent.READ,
        ]

    def test_records_eviction_writes(self):
        trace = PageTrace()
        pool = BufferPool(1, stats=trace.attach(IoStats()))
        pool.access(page(0), dirty=True)
        pool.access(page(1))  # evicts dirty page 0
        assert len(trace.events(TraceEvent.WRITE)) == 1

    def test_underlying_stats_still_count(self):
        trace = PageTrace()
        stats = trace.attach(IoStats())
        pool = BufferPool(2, stats=stats)
        pool.access(page(0))
        assert stats.total_reads == 1
        assert stats.total_requests == 1

    def test_kind_filter(self):
        trace = PageTrace()
        pool = BufferPool(4, stats=trace.attach(IoStats()))
        pool.access(page(0, PageKind.RELATION))
        pool.access(page(0, PageKind.SUCCESSOR))
        assert len(trace.events(TraceEvent.READ, PageKind.RELATION)) == 1


class TestTracedPool:
    def test_records_page_numbers(self):
        trace = PageTrace()
        pool = TracedPool(4, trace)
        pool.access(page(7))
        pool.access(page(3))
        assert trace.page_numbers(TraceEvent.READ, PageKind.SUCCESSOR) == [7, 3]

    def test_create_is_distinguished_from_write(self):
        trace = PageTrace()
        pool = TracedPool(4, trace)
        pool.create(page(5))
        assert trace.page_numbers(TraceEvent.CREATE, PageKind.SUCCESSOR) == [5]
        assert trace.events(TraceEvent.WRITE) == []

    def test_is_sequential(self):
        trace = PageTrace()
        pool = TracedPool(8, trace)
        for number in (0, 1, 2, 5):
            pool.access(page(number))
        assert trace.is_sequential(TraceEvent.READ, PageKind.SUCCESSOR)
        pool.access(page(1))  # hit: not a READ, still sequential
        assert trace.is_sequential(TraceEvent.READ, PageKind.SUCCESSOR)
        pool.access(page(999))
        pool.access(page(0))  # evicted meanwhile? capacity 8: still hit
        # A genuinely out-of-order *read* breaks sequentiality.
        trace2 = PageTrace()
        pool2 = TracedPool(2, trace2)
        pool2.access(page(3))
        pool2.access(page(1))
        assert not trace2.is_sequential(TraceEvent.READ, PageKind.SUCCESSOR)


class TestAccessPatterns:
    def test_full_scan_of_the_relation_is_sequential(self, medium_dag):
        """The restructuring phase of a full query reads the relation
        front to back -- the clustered layout's whole point."""
        trace = PageTrace()
        pool = TracedPool(10, trace)
        relation = ArcRelation(medium_dag)
        relation.scan(pool)
        assert trace.is_sequential(TraceEvent.READ, PageKind.RELATION)
        assert trace.page_numbers(TraceEvent.READ, PageKind.RELATION) == list(
            range(relation.num_pages)
        )

    def test_indexed_probes_touch_only_the_nodes_run(self, medium_dag):
        trace = PageTrace()
        pool = TracedPool(10, trace)
        relation = ArcRelation(medium_dag)
        relation.read_successors(40, pool)
        data_reads = trace.page_numbers(TraceEvent.READ, PageKind.RELATION)
        assert set(data_reads) == set(relation.pages_for_node(40))

    def test_unclustered_probes_are_scattered(self):
        """JKB's predecessor fetch: the probed pages jump around."""
        from repro.graphs.generator import generate_dag

        trace = PageTrace()
        pool = TracedPool(2, trace)
        relation = ArcRelation(generate_dag(800, 4, 200, seed=1))
        relation.probe_arcs_unclustered(30, pool, seed_position=3)
        reads = trace.page_numbers(TraceEvent.READ, PageKind.RELATION)
        assert len(reads) > 1
        assert not all(a <= b for a, b in zip(reads, reads[1:]))
