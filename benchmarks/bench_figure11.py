"""Benchmark: regenerate Figure 11 (high selectivity: marking %)."""


def test_figure11(benchmark, profile):
    from repro.experiments.figures import figure11

    panels = benchmark.pedantic(figure11, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    for panel in panels.values():
        for index in range(len(panel.xs)):
            # SRCH never marks (it has no marking optimisation).
            assert panel.series["SRCH"][index] == 0.0
            # JKB2 misses almost every marking opportunity: its
            # percentage is near zero and far below BTC's.
            assert panel.series["JKB2"][index] <= 0.2
            assert panel.series["JKB2"][index] <= panel.series["BTC"][index]
