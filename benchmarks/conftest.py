"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at the
``smoke`` scale profile (250-node graphs) so that the full suite runs
in minutes; pass ``--repro-profile default`` or ``paper`` for bigger
runs (the ``paper`` profile uses the full 2000-node workloads and can
take hours for the tree-algorithm figures).

Each benchmark prints the regenerated rows/series (visible with
``pytest -s`` or in the captured output) and asserts the *shape* the
paper reports -- who wins, and roughly how the curves move -- not the
absolute numbers.

Telemetry: a process-wide :class:`~repro.obs.sink.MemorySink` collects
one :class:`~repro.obs.record.RunRecord` per algorithm run made by the
suite, and at session end the records are folded into one entry per
benchmark cell and written to ``BENCH_summary.json`` at the repository
root -- the perf trajectory later changes are diffed against (see
``python -m repro compare`` and docs/OBSERVABILITY.md).

Repetitions: ``--repro-reps N`` repeats every run N times.  The
simulated counters are deterministic, so this purely multiplies the
timing samples -- the summary records min-of-N ``cpu_seconds`` /
``wall_seconds`` plus every sample, which is what the compare gate's
noise band needs.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        default="smoke",
        choices=["smoke", "default", "paper"],
        help="scale profile for the reproduction benchmarks",
    )
    parser.addoption(
        "--repro-jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grids (default: 1 = serial; "
        "run records still merge into the session sink in canonical order)",
    )
    parser.addoption(
        "--repro-reps",
        type=int,
        default=1,
        help="repeat every run N times (min-of-N timings, all samples "
        "recorded in BENCH_summary.json)",
    )


@pytest.fixture(scope="session")
def profile(request):
    from repro.experiments.config import get_profile

    return get_profile(request.config.getoption("--repro-profile"))


def pytest_sessionstart(session):
    from repro.experiments.parallel import ExperimentEngine, set_engine
    from repro.obs.bench import set_bench_reps
    from repro.obs.sink import MemorySink, set_global_sink

    sink = MemorySink()
    session.config._repro_bench_sink = sink
    session.config._repro_prev_sink = set_global_sink(sink)
    session.config._repro_prev_reps = set_bench_reps(
        session.config.getoption("--repro-reps")
    )

    jobs = session.config.getoption("--repro-jobs")
    if jobs > 1:
        # One engine (and one worker pool with its per-worker graph
        # caches) for the whole benchmark session; workers return their
        # records to this process, which feeds the MemorySink above.
        engine = ExperimentEngine(jobs=jobs)
        session.config._repro_engine = engine
        session.config._repro_prev_engine = set_engine(engine)


def pytest_sessionfinish(session, exitstatus):
    from repro.experiments.parallel import set_engine
    from repro.obs.bench import build_bench_summary, set_bench_reps, write_bench_summary
    from repro.obs.sink import set_global_sink

    engine = getattr(session.config, "_repro_engine", None)
    if engine is not None:
        set_engine(getattr(session.config, "_repro_prev_engine", None))
        engine.close()

    sink = getattr(session.config, "_repro_bench_sink", None)
    if sink is None:
        return
    set_global_sink(getattr(session.config, "_repro_prev_sink", None))
    set_bench_reps(getattr(session.config, "_repro_prev_reps", 1))
    summary = build_bench_summary(sink.records)
    if not summary:
        return
    write_bench_summary(summary, session.config.rootpath / "BENCH_summary.json")