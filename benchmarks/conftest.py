"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at the
``smoke`` scale profile (250-node graphs) so that the full suite runs
in minutes; pass ``--repro-profile default`` or ``paper`` for bigger
runs (the ``paper`` profile uses the full 2000-node workloads and can
take hours for the tree-algorithm figures).

Each benchmark prints the regenerated rows/series (visible with
``pytest -s`` or in the captured output) and asserts the *shape* the
paper reports -- who wins, and roughly how the curves move -- not the
absolute numbers.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        default="smoke",
        choices=["smoke", "default", "paper"],
        help="scale profile for the reproduction benchmarks",
    )


@pytest.fixture(scope="session")
def profile(request):
    from repro.experiments.config import get_profile

    return get_profile(request.config.getoption("--repro-profile"))
