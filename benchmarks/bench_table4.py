"""Benchmark: regenerate Table 4 (JKB2 vs BTC by graph width)."""

from repro.metrics.report import format_table


def test_table4(benchmark, profile):
    from repro.experiments.tables import table4

    rows = benchmark.pedantic(
        table4, args=(profile,), kwargs={"selectivities": (5, 10)}, rounds=1, iterations=1
    )
    print("\n" + format_table(rows, title="Table 4. JKB2 vs BTC for PTC queries (by width)"))

    widths = [row["W"] for row in rows]
    assert widths == sorted(widths)

    # Paper observation (Section 6.3.4): JKB performs well when the
    # width is low and badly when it is high.  Compare the average
    # ratio over the three narrowest vs the three widest graphs.
    for column in ("jkb2/btc@s=5", "jkb2/btc@s=10"):
        narrow = sum(row[column] for row in rows[:3]) / 3
        wide = sum(row[column] for row in rows[-3:]) / 3
        assert narrow < wide, (column, narrow, wide)
