"""Ablation: what path aggregation costs relative to reachability.

The boolean study's marking optimisation is sound only because
reachability's "plus" ignores alternative paths.  The generalized
closure (semiring path aggregation, from the thesis [7] behind the
paper's framework) must process every arc and stores double-width
(successor, value) entries, so the same workload costs strictly more
page I/O -- this bench quantifies the premium per semiring.
"""

from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.metrics.report import format_table
from repro.paths import (
    WeightedDigraph,
    critical_path_lengths,
    path_counts,
    shortest_distances,
)


def run_comparison(profile):
    graph = profile.build("G5", seed=0)
    weighted = WeightedDigraph.uniform(graph, label=1)
    system = SystemConfig(buffer_pages=10)
    rows = []

    boolean = make_algorithm("btc").run(graph, Query.full(), system)
    rows.append(
        {
            "closure": "boolean (btc)",
            "total_io": boolean.metrics.total_io,
            "unions": boolean.metrics.list_unions,
            "marked_arcs": boolean.metrics.arcs_marked,
            "tuples": boolean.num_tuples,
        }
    )
    for label, runner in (
        ("min-plus (distances)", shortest_distances),
        ("max-plus (critical)", critical_path_lengths),
        ("count (paths)", path_counts),
    ):
        closure = runner(weighted, system=system)
        rows.append(
            {
                "closure": label,
                "total_io": closure.metrics.total_io,
                "unions": closure.metrics.list_unions,
                "marked_arcs": closure.metrics.arcs_marked,
                "tuples": closure.num_tuples,
            }
        )
    return rows


def test_generalized_closure(benchmark, profile):
    rows = benchmark.pedantic(run_comparison, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Generalized vs boolean closure (G5, M=10)"))

    boolean = rows[0]
    assert boolean["marked_arcs"] > 0
    for row in rows[1:]:
        # Same reachable pairs...
        assert row["tuples"] == boolean["tuples"], row["closure"]
        # ...but no marking (every arc unions) and wider entries.
        assert row["marked_arcs"] == 0
        assert row["unions"] > boolean["unions"]
        assert row["total_io"] > boolean["total_io"]
