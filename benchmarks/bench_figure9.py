"""Benchmark: regenerate Figure 9 (high selectivity: tuples generated)."""


def test_figure9(benchmark, profile):
    from repro.experiments.figures import figure9

    panels = benchmark.pedantic(figure9, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    # JKB2's advantage scales with the graph: at the paper's scale it
    # generates under 1% of BTC's tuples (Section 6.3.2); at reduced
    # scales the gap narrows, so the asserted factor adapts.
    factor = 5 if profile.scale <= 2 else 1.0
    for panel in panels.values():
        for index in range(len(panel.xs)):
            btc = panel.series["BTC"][index]
            assert panel.series["JKB2"][index] < btc / factor
            # SRCH achieves optimal selection efficiency, so it also
            # generates far fewer tuples than BTC.
            assert panel.series["SRCH"][index] <= btc
            # BJ generates no more than BTC (single-parent reduction).
            assert panel.series["BJ"][index] <= btc * 1.1
