"""Benchmark: regenerate Figure 13 (effect of the buffer pool size)."""


def test_figure13(benchmark, profile):
    from repro.experiments.figures import figure13

    panels = benchmark.pedantic(figure13, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    for letter in ("a", "b"):
        io_panel = panels[letter]
        for name, series in io_panel.series.items():
            # Performance improves as the buffer pool grows.
            assert series[-1] <= series[0], (letter, name)

    for letter in ("c", "d"):
        hit_panel = panels[letter]
        for name, series in hit_panel.series.items():
            if name == "SRCH":
                continue  # SRCH does its work in preprocessing
            # The computation-phase hit ratio rises with the pool size.
            assert series[-1] >= series[0] - 1e-9, (letter, name)

    # JKB2 is the most sensitive: with the largest pool its small
    # special-node trees become memory resident and its hit ratio
    # approaches 1 (Section 6.3.5).
    for letter in ("c", "d"):
        assert panels[letter].series["JKB2"][-1] > 0.9
