"""Benchmark: regenerate Table 2 (graph characteristics of G1..G12)."""

from repro.metrics.report import format_table


def test_table2(benchmark, profile):
    from repro.experiments.tables import table2

    rows = benchmark.pedantic(table2, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Table 2. Graph parameters"))

    by_name = {row["graph"]: row for row in rows}
    assert len(rows) == 12

    # Paper trend: increasing F or decreasing l deepens the graph
    # (higher H and maximum level) -- compare the extremes.
    assert by_name["G10"]["H"] > by_name["G3"]["H"]
    assert by_name["G10"]["max_level"] > by_name["G3"]["max_level"]

    # Paper observation (Section 5.3): the average locality of the
    # irredundant arcs is much lower than that of all arcs.
    for row in rows:
        assert row["avg_irred_loc"] <= row["avg_loc"]

    # Denser families close more pairs.
    assert by_name["G12"]["closure"] > by_name["G3"]["closure"]
