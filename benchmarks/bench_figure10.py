"""Benchmark: regenerate Figure 10 (high selectivity: list unions)."""


def test_figure10(benchmark, profile):
    from repro.experiments.figures import figure10

    panels = benchmark.pedantic(figure10, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    for panel in panels.values():
        # SRCH performs its searches independently per source, so its
        # union count rises (weakly) with the source count...
        srch = panel.series["SRCH"]
        assert srch[-1] >= srch[0]

        for index in range(len(panel.xs)):
            # ...and JKB2's poor marking utilisation makes it perform
            # at least as many unions as BTC (Section 6.3.3).
            assert panel.series["JKB2"][index] >= panel.series["BTC"][index] * 0.9
            # BJ skips the single-parent nodes' unions.
            assert panel.series["BJ"][index] <= panel.series["BTC"][index]
