"""Ablation: successor-list block granularity (Section 5.1 geometry).

The paper fixes the page layout at 30 blocks of 15 successors.  This
ablation re-runs BTC with coarser and finer block granularities (page
capacity held at 450 successors) to show what the choice buys: fine
blocks waste little space but fragment lists across pages; coarse
blocks keep lists contiguous but strand free space inside blocks, so
fewer lists fit per page and splits come earlier.
"""

from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.metrics.report import format_table

GEOMETRIES = (
    (90, 5),    # fine: 90 blocks of 5
    (30, 15),   # the paper's layout
    (10, 45),   # coarse
    (2, 225),   # very coarse: two half-page blocks
)


def run_ablation(profile):
    graph = profile.build("G6", seed=0)
    rows = []
    for blocks_per_page, block_capacity in GEOMETRIES:
        system = SystemConfig(
            buffer_pages=10,
            blocks_per_page=blocks_per_page,
            block_capacity=block_capacity,
        )
        result = BtcAlgorithm().run(graph, Query.full(), system)
        rows.append(
            {
                "blocks/page": blocks_per_page,
                "block_cap": block_capacity,
                "total_io": result.metrics.total_io,
                "answer": result.num_tuples,
            }
        )
    return rows


def test_blocksize_ablation(benchmark, profile):
    rows = benchmark.pedantic(run_ablation, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Ablation: block granularity (BTC, G6, M=10)"))

    # Correctness is geometry-independent.
    assert len({row["answer"] for row in rows}) == 1

    # The layout choice is a real but bounded effect: within one order
    # of magnitude across a 45x granularity range.
    ios = [row["total_io"] for row in rows]
    assert max(ios) <= 10 * min(ios)
