"""Benchmark: regenerate Figure 7 (successor tree algorithms vs BTC)."""


def test_figure7(benchmark, profile):
    from repro.experiments.figures import figure7

    panels = benchmark.pedantic(figure7, args=(profile,), rounds=1, iterations=1)
    print("\n" + panels["a"].render())
    print("\n" + panels["b"].render())

    panel_a, panel_b = panels["a"], panels["b"]

    # Paper finding: BTC performs better than the successor tree
    # algorithms on page I/O at every out-degree...
    for index in range(len(panel_a.xs)):
        assert panel_a.series["BTC"][index] <= panel_a.series["SPN"][index]
        assert panel_a.series["BTC"][index] <= panel_a.series["JKB"][index]
        assert panel_a.series["BTC"][index] <= panel_a.series["JKB2"][index]

    # ...even though the tree algorithms generate far fewer duplicates
    # (panel b) -- the paper's Section 7 point that tuple-level metrics
    # invert the page-I/O ranking.
    for index in range(len(panel_b.xs)):
        assert panel_b.series["SPN"][index] <= panel_b.series["BTC"][index]

    # JKB (no inverse relation) pays an exploding preprocessing cost as
    # the out-degree grows: by F = 50 it is far above BTC.
    assert panel_a.series["JKB"][-1] > 2 * panel_a.series["BTC"][-1]
