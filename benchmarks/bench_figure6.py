"""Benchmark: regenerate Figure 6 (Hybrid vs BTC, effect of blocking)."""


def test_figure6(benchmark, profile):
    from repro.experiments.figures import figure6

    data = benchmark.pedantic(figure6, args=(profile,), rounds=1, iterations=1)
    print("\n" + data.render())

    # HYB with ILIMIT = 0 is identical to BTC (the HYB-0 curve).
    assert data.series["HYB-0"] == data.series["BTC"]

    # Paper finding: blocking is detrimental -- the algorithm performs
    # best when no blocking is used.  Check at the smallest pool, where
    # the reserved diagonal block bites hardest.
    btc_io = data.series["BTC"][0]
    for label in ("HYB-0.1", "HYB-0.2", "HYB-0.3"):
        assert data.series[label][0] >= btc_io, label

    # Everyone improves as the buffer pool grows.
    for label, series in data.series.items():
        assert series[-1] <= series[0], label
