"""Benchmark: regenerate Figure 12 (avg locality of unmarked arcs)."""


def test_figure12(benchmark, profile):
    from repro.experiments.figures import figure12

    panels = benchmark.pedantic(figure12, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    for panel in panels.values():
        for index in range(len(panel.xs)):
            # The locality of the arcs JKB2 actually processes is worse
            # (larger) than BTC's: marking removes exactly the long
            # arcs for BTC, and JKB2 barely marks (Section 6.3.3).
            assert panel.series["JKB2"][index] >= panel.series["BTC"][index]
