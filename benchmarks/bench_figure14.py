"""Benchmark: regenerate Figure 14 (low-selectivity trends on G9)."""


def test_figure14(benchmark, profile):
    from repro.experiments.figures import figure14

    panels = benchmark.pedantic(figure14, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    io_panel, tuples_panel = panels["a"], panels["b"]
    marking_panel, unions_panel = panels["c"], panels["d"]

    # BJ performs almost the same as BTC in this range: few non-source
    # single-parent nodes remain when most nodes are sources.
    for bj_io, btc_io in zip(io_panel.series["BJ"], io_panel.series["BTC"]):
        assert abs(bj_io - btc_io) <= max(20.0, 0.2 * btc_io)

    # At s = n the BTC and BJ curves converge exactly, and every
    # algorithm answers the full closure.
    assert io_panel.series["BTC"][-1] == io_panel.series["BJ"][-1]

    # JKB2's distinctive gaps diminish as s grows (Section 6.3.6):
    # tuples generated stay below BTC, unions stay above, and the
    # marking percentage climbs toward BTC's.
    assert tuples_panel.series["JKB2"][0] < tuples_panel.series["BTC"][0]
    assert unions_panel.series["JKB2"][0] >= unions_panel.series["BTC"][0] * 0.9
    assert marking_panel.series["JKB2"][-1] >= marking_panel.series["JKB2"][0]
