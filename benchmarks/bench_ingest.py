"""Benchmark: ingestion-scale pipeline on the CSR graph core.

The acceptance scenario for the array-backed core: generate the
``braid-125k`` stream family (125,000 nodes, ~1.1M arcs) to a gzipped
SNAP file, stream it back through :func:`repro.graphs.ingest.load_snap`
into a frozen CSR graph, build the chain reachability index on the fast
engine, and answer seeded reachability probes -- every one verified
against a direct forward search.  Writes ``BENCH_ingest.json`` at the
repository root (same sorted-keys / trailing-newline discipline as the
other ``BENCH_*.json`` files) with:

* ingest throughput (arc lines per second) and wall time;
* peak RSS after the whole pipeline (the bounded-memory claim);
* chain-index build wall time and shape (k, vector entries);
* verified-probe throughput (queries per second).

Probes are batched: a handful of sources share one direct BFS each, so
the oracle costs O(sources * (n + m)) instead of O(probes * (n + m))
while every index answer is still independently checked.

Run standalone (``python benchmarks/bench_ingest.py``) or under the
bench suite (``pytest benchmarks/bench_ingest.py``).
"""

import random
import resource
import tempfile
import time
from pathlib import Path

from repro.core.chains import build_chain_index
from repro.core.query import SystemConfig
from repro.graphs.ingest import stream_family
from repro.graphs.toposort import reachable_from
from repro.obs.bench import write_bench_summary

FAMILY = "braid-125k"
PROBES = 1000
PROBE_SOURCES = 10
PROBE_SEED = 17


def _peak_rss_mb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def run_suite():
    family = stream_family(FAMILY)

    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as tmp:
        path = Path(tmp) / f"{family.name}.snap.gz"
        write_start = time.perf_counter()
        arcs_written = family.write(path)
        write_seconds = time.perf_counter() - write_start
        file_mb = path.stat().st_size / (1024 * 1024)

        from repro.graphs.ingest import load_snap

        load_start = time.perf_counter()
        result = load_snap(path)
        load_seconds = time.perf_counter() - load_start

    graph, stats = result.graph, result.stats
    assert stats.nodes == family.num_nodes
    assert stats.arcs == arcs_written and not stats.compacted
    assert stats.acyclic

    build_start = time.perf_counter()
    index = build_chain_index(graph, None, SystemConfig(engine="fast"))
    build_seconds = time.perf_counter() - build_start
    vector_entries = sum(len(vector) for vector in index.vectors.values())

    # Seeded verified probes: sources drawn from the back half of the
    # node range keep each oracle BFS small while still crossing chain
    # boundaries (every braid node can reach later chains).
    rng = random.Random(PROBE_SEED)
    per_source = PROBES // PROBE_SOURCES
    pairs = []
    checked = failures = positives = 0
    for _ in range(PROBE_SOURCES):
        u = rng.randrange(graph.num_nodes // 2, graph.num_nodes)
        closure = reachable_from(graph, [u])
        for _ in range(per_source):
            v = rng.randrange(graph.num_nodes)
            got = index.reachable(u, v)
            expected = v != u and v in closure
            positives += got
            failures += got != expected
            checked += 1
            pairs.append((u, v))
    assert failures == 0, f"{failures} mismatched probes"

    # Throughput over the already-verified probe set: pure index reads,
    # no oracle in the timed region.
    query_start = time.perf_counter()
    for u, v in pairs:
        index.reachable(u, v)
    query_seconds = time.perf_counter() - query_start

    return {
        "workload": {
            "family": family.name,
            "nodes": stats.nodes,
            "arcs": stats.arcs,
            "file_mb": round(file_mb, 1),
        },
        "write": {
            "seconds": round(write_seconds, 2),
            "arcs_per_second": round(arcs_written / write_seconds),
        },
        "ingest": {
            "seconds": round(load_seconds, 2),
            "arcs_per_second": round(stats.arc_lines / load_seconds),
        },
        "index": {
            "engine": "fast",
            "build_seconds": round(build_seconds, 2),
            "k": index.k,
            "vector_entries": vector_entries,
        },
        "probes": {
            "count": checked,
            "sources": PROBE_SOURCES,
            "positives": positives,
            "failures": failures,
            "qps": round(len(pairs) / query_seconds),
        },
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def test_ingest_pipeline_at_scale(benchmark):
    out = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    write_bench_summary(out, Path(__file__).resolve().parents[1] / "BENCH_ingest.json")
    print(
        f"\n{out['workload']['family']}: n={out['workload']['nodes']:,} "
        f"m={out['workload']['arcs']:,} ({out['workload']['file_mb']}MB gz), "
        f"ingest {out['ingest']['arcs_per_second']:,}/s, "
        f"index build {out['index']['build_seconds']}s "
        f"(k={out['index']['k']}), "
        f"probes {out['probes']['qps']:,} qps, "
        f"peak RSS {out['peak_rss_mb']}MB"
    )
    # The acceptance floor: a >=100k-node / >=1M-arc graph ingested and
    # indexed with every probe verified.
    assert out["workload"]["nodes"] >= 100_000
    assert out["workload"]["arcs"] >= 1_000_000
    assert out["probes"]["failures"] == 0
    # Bounded memory: the whole pipeline (stream, CSR, index) must stay
    # far below the per-node-Python-list regime (~1KB/node would be
    # 125MB for the graph alone before the index).
    assert out["peak_rss_mb"] < 2048


if __name__ == "__main__":
    summary = run_suite()
    write_bench_summary(
        summary, Path(__file__).resolve().parents[1] / "BENCH_ingest.json"
    )
    print(summary)
