"""Ablation: page and list replacement policies (Section 5.1).

The paper states: "By and large, the choice of page and list
replacement policies had a secondary effect."  This ablation sweeps
both policy dimensions for BTC and checks that the spread between the
best and worst combination stays small relative to the spread between
*algorithms* (which is multiples, per Figures 6-8).
"""

from repro.core.btc import BtcAlgorithm
from repro.core.query import Query, SystemConfig
from repro.metrics.report import format_table
from repro.storage.successor_store import ListPlacementPolicy

PAGE_POLICIES = ("lru", "mru", "fifo", "clock", "random")


def run_sweep(profile):
    graph = profile.build("G6", seed=0)
    rows = []
    for page_policy in PAGE_POLICIES:
        for list_policy in ListPlacementPolicy:
            system = SystemConfig(
                buffer_pages=10, page_policy=page_policy, list_policy=list_policy
            )
            result = BtcAlgorithm().run(graph, Query.full(), system)
            rows.append(
                {
                    "page_policy": page_policy,
                    "list_policy": list_policy.value,
                    "total_io": result.metrics.total_io,
                    "answer": result.num_tuples,
                }
            )
    return rows


def test_policy_ablation(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    rows = sorted(rows, key=lambda row: row["total_io"])
    print("\n" + format_table(rows, title="Ablation: replacement policies (BTC, G6, M=10)"))

    # Correctness is policy-independent.
    answers = {row["answer"] for row in rows}
    assert len(answers) == 1

    # Secondary effect among the reasonable policies: best-to-worst
    # spread stays small.  MRU is excluded -- it is adversarial for
    # the reverse-topological scan (it evicts exactly the lists about
    # to be unioned) and the paper did not consider it reasonable.
    reasonable = [row for row in rows if row["page_policy"] != "mru"]
    best, worst = reasonable[0]["total_io"], reasonable[-1]["total_io"]
    assert worst <= 3 * best

    # The default configuration (LRU) is at or near the best.
    lru_best = min(row["total_io"] for row in rows if row["page_policy"] == "lru")
    assert lru_best <= 1.5 * best
