"""Ablation: the marking optimisation (Section 3.1 / 5.3).

The paper argues the marking optimisation matters twice over: it
removes successor-list unions altogether, and the unions it removes
are disproportionately the *expensive* ones (redundant arcs have much
higher locality values -- Table 2's ``avg_irred_loc`` column).  This
ablation runs BTC with marking disabled and measures both effects.
"""

from repro.core.btc import BtcAlgorithm
from repro.core.context import ExecutionContext
from repro.core.query import Query, SystemConfig
from repro.metrics.report import format_table


class UnmarkedBtc(BtcAlgorithm):
    """BTC with the marking optimisation disabled (every arc unions)."""

    name = "btc-nomark"

    def compute(self, ctx: ExecutionContext) -> None:
        position = ctx.position
        for node in reversed(ctx.topo_order):
            children = sorted(ctx.adjacency[node], key=position.__getitem__)
            for child in children:
                ctx.metrics.arcs_considered += 1
                ctx.metrics.unmarked_locality_total += ctx.arc_locality(node, child)
                ctx.union_list(node, child)


def run_ablation(profile):
    rows = []
    for family in ("G5", "G9"):
        graph = profile.build(family, seed=0)
        system = SystemConfig(buffer_pages=10)
        for algorithm in (BtcAlgorithm(), UnmarkedBtc()):
            result = algorithm.run(graph, Query.full(), system)
            metrics = result.metrics
            rows.append(
                {
                    "graph": family,
                    "algorithm": algorithm.name,
                    "total_io": metrics.total_io,
                    "unions": metrics.list_unions,
                    "tuples_generated": metrics.tuples_generated,
                    "avg_arc_locality": round(metrics.avg_unmarked_locality, 1),
                    "answer": result.num_tuples,
                }
            )
    return rows


def test_marking_ablation(benchmark, profile):
    rows = benchmark.pedantic(run_ablation, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Ablation: marking optimisation"))

    by_key = {(row["graph"], row["algorithm"]): row for row in rows}
    for family in ("G5", "G9"):
        marked = by_key[(family, "btc")]
        unmarked = by_key[(family, "btc-nomark")]
        # Same answers either way.
        assert marked["answer"] == unmarked["answer"]
        # Marking removes unions and I/O...
        assert marked["unions"] <= unmarked["unions"]
        assert marked["total_io"] <= unmarked["total_io"]
        # ...and the arcs it removes are the long (expensive) ones, so
        # the processed-arc locality is better (smaller) with marking.
        assert marked["avg_arc_locality"] <= unmarked["avg_arc_locality"]
