"""Benchmark: repro-lint cold vs warm over the whole ``src/`` tree.

The dataflow rules (RPL008-010) build a CFG and run a fixpoint per
function, so a full-rule run over ``src/`` costs real CPU.  The
per-file content-hash cache is what keeps the CI ``lint-dataflow`` leg
flat as rules multiply: a warm run should be dominated by hashing, not
analysis.  This benchmark measures both regimes with the complete rule
set and writes ``BENCH_lint.json`` at the repository root (same
sorted-keys / trailing-newline discipline as the other ``BENCH_*.json``
files) with:

* file and rule counts for the measured configuration;
* cold wall time (no cache file) and files per second;
* warm wall time (every file a cache hit) and the speedup ratio;
* the cache hit/miss split of the warm run, as a self-check.

Both runs must exit clean -- a finding in ``src/`` is a benchmark
failure, mirroring the CI self-check.

Run standalone (``python benchmarks/bench_lint.py``) or under the
bench suite (``pytest benchmarks/bench_lint.py``).
"""

import tempfile
import time
from pathlib import Path

from repro.lint.cache import LintCache, rules_signature
from repro.lint.config import LintConfig
from repro.lint.framework import lint_paths
from repro.lint.rules import make_rules
from repro.obs.bench import write_bench_summary

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_suite():
    rules = make_rules(LintConfig())
    signature = rules_signature(rules)

    with tempfile.TemporaryDirectory(prefix="repro-bench-lint-") as tmp:
        cache_path = Path(tmp) / "lint-cache.json"

        cold_cache = LintCache.load(cache_path, signature)
        cold_start = time.perf_counter()
        cold = lint_paths([str(SRC)], rules, cache=cold_cache)
        cold_seconds = time.perf_counter() - cold_start
        cold_cache.save()
        assert not cold.findings, [f.render() for f in cold.findings]

        warm_cache = LintCache.load(cache_path, signature)
        warm_start = time.perf_counter()
        warm = lint_paths([str(SRC)], rules, cache=warm_cache)
        warm_seconds = time.perf_counter() - warm_start
        assert not warm.findings, [f.render() for f in warm.findings]
        assert warm_cache.misses == 0, "warm run should be all cache hits"

    return {
        "workload": {
            "path": "src",
            "files": cold.files,
            "rules": len(rules),
        },
        "cold": {
            "seconds": round(cold_seconds, 3),
            "files_per_second": round(cold.files / cold_seconds, 1),
        },
        "warm": {
            "seconds": round(warm_seconds, 3),
            "files_per_second": round(warm.files / warm_seconds, 1),
            "cache_hits": warm_cache.hits,
            "cache_misses": warm_cache.misses,
        },
        "speedup": round(cold_seconds / warm_seconds, 1),
    }


def test_lint_cold_warm(benchmark):
    out = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    write_bench_summary(out, REPO_ROOT / "BENCH_lint.json")
    print(
        f"\nrepro-lint over src: {out['workload']['files']} files, "
        f"{out['workload']['rules']} rules, "
        f"cold {out['cold']['seconds']}s, "
        f"warm {out['warm']['seconds']}s "
        f"({out['speedup']}x, {out['warm']['cache_hits']} hits)"
    )
    # The CI budget: a warm full-rule pass over src/ must stay well
    # under the lint-dataflow leg's 20s ceiling.
    assert out["warm"]["seconds"] < 20
    assert out["warm"]["cache_misses"] == 0


if __name__ == "__main__":
    summary = run_suite()
    write_bench_summary(summary, REPO_ROOT / "BENCH_lint.json")
    print(summary)
