"""Benchmark: the chain-decomposition index against the paper's suite.

A comparison the 1994 study could not draw: the ``chains`` family
(Kritikakis & Tollis) against BTC and Hybrid on the paper's own grid
and cost model.  Three quantities are reported:

* **Closure emission** -- total page I/O for the full materialised
  closure across buffer sizes (the ``figure_chains`` grid, so the
  cells land in ``BENCH_summary.json`` like every other figure);
* **Index build** -- page I/O for constructing just the k-vector
  index (no closure emission), the price of a query-ready structure;
* **Per-query latency** -- wall-clock cost of ``reachable(u, v)``
  probes against the frozen index, which must not touch a single
  page (the counters are asserted flat).
"""

import random
import time

from repro.core.chains import build_chain_index
from repro.core.query import SystemConfig
from repro.graphs.datasets import graph_family

QUERY_PROBES = 5_000


def run_suite(profile):
    from repro.experiments.figures import figure_chains

    data = figure_chains(profile)

    graph = graph_family("G9").generate(seed=0, scale=profile.scale)
    index = build_chain_index(graph, system=SystemConfig(buffer_pages=20))
    build_io = index.metrics.total_io

    rng = random.Random(0)
    nodes = list(graph.nodes())
    probes = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(QUERY_PROBES)]
    start = time.perf_counter()
    hits = sum(1 for src, dst in probes if index.reachable(src, dst))
    elapsed = time.perf_counter() - start

    return {
        "figure": data,
        "k": index.k,
        "num_nodes": index.num_nodes,
        "build_io": build_io,
        "query_io_delta": index.metrics.total_io - build_io,
        "query_hits": hits,
        "query_micros": elapsed / QUERY_PROBES * 1e6,
    }


def test_chains_vs_paper_suite(benchmark, profile):
    out = benchmark.pedantic(run_suite, args=(profile,), rounds=1, iterations=1)
    data = out["figure"]
    print("\n" + data.render())
    print(
        f"index: k={out['k']} over n={out['num_nodes']}, "
        f"build_io={out['build_io']}, "
        f"{out['query_hits']}/{QUERY_PROBES} probes reachable at "
        f"{out['query_micros']:.2f} us/query"
    )

    chains = data.series["CHAINS"]
    # Everyone improves as the buffer pool grows.
    for label, series in data.series.items():
        assert series[-1] <= series[0], label
    # Under buffer pressure the chain index's one-vector-per-node
    # emission undercuts Hybrid's blocked successor lists.
    assert chains[0] < data.series["HYB-0.2"][0]
    # The index alone is cheaper than the full materialised closure at
    # the same buffer size: emission pays for the output pages the
    # build-only path skips.
    assert out["build_io"] < chains[1]
    # A useful decomposition: well below one chain per node.
    assert 0 < out["k"] < out["num_nodes"]
    # The acceptance criterion of the index: probes never touch the
    # storage substrate, so the page-I/O bill stays flat during queries.
    assert out["query_io_delta"] == 0
    assert 0 < out["query_hits"] < QUERY_PROBES
