"""Benchmark: serve-layer latency and throughput on both engines.

Measures the resilient query service end to end and writes
``BENCH_serve.json`` at the repository root (same sorted-keys /
trailing-newline discipline as ``BENCH_summary.json``):

* **direct** -- ``ReachabilityService`` coroutine calls on a live event
  loop: per-query p50/p99 latency and queries/second.  This is the
  serving ceiling -- validation, cache, telemetry, no socket.
* **http** -- the same queries as individual ``GET /reachable``
  round-trips over a UNIX-domain socket (keep-alive), plus batched
  ``POST /batch`` throughput.

The fast engine's direct path is the headline number (the acceptance
target is 10k+ qps single-process); the paged engine shows that engine
choice only changes the *build* cost -- the frozen index serves at the
same speed once built.

Run standalone (``python benchmarks/bench_serve.py``) or under the
bench suite (``pytest benchmarks/bench_serve.py``).
"""

import asyncio
import random
import tempfile
import time
from pathlib import Path

from repro.core.query import SystemConfig
from repro.graphs.generator import generate_dag
from repro.obs.bench import write_bench_summary
from repro.serve.http import ServeClient, ServeServer
from repro.serve.service import ReachabilityService, ServeConfig

NUM_NODES = 400
DIRECT_QUERIES = 20_000
HTTP_QUERIES = 2_000
BATCHES = 20
BATCH_SIZE = 200


def _percentile(samples, pct):
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _probes(graph, count, seed):
    rng = random.Random(seed)
    return [
        (rng.randrange(graph.num_nodes), rng.randrange(graph.num_nodes))
        for _ in range(count)
    ]


async def _bench_engine(graph, engine):
    service = ReachabilityService(
        graph,
        system=SystemConfig(engine=engine),
        config=ServeConfig(cache_size=4096),
    )
    build_start = time.perf_counter()
    assert await service.build()
    build_seconds = time.perf_counter() - build_start

    # Direct path: the service coroutine API, no socket.
    latencies = []
    direct_start = time.perf_counter()
    for u, v in _probes(graph, DIRECT_QUERIES, seed=1):
        t0 = time.perf_counter()
        await service.reachable(u, v)
        latencies.append(time.perf_counter() - t0)
    direct_elapsed = time.perf_counter() - direct_start

    # HTTP path over a UNIX-domain socket, keep-alive connection.
    uds = tempfile.mktemp(prefix="repro-bench-", suffix=".sock")
    server = ServeServer(service, uds=uds)
    await server.start()
    client = ServeClient(uds=uds)
    try:
        http_latencies = []
        http_start = time.perf_counter()
        for u, v in _probes(graph, HTTP_QUERIES, seed=2):
            t0 = time.perf_counter()
            status, payload = await client.reachable(u, v)
            http_latencies.append(time.perf_counter() - t0)
            assert status == 200
        http_elapsed = time.perf_counter() - http_start

        batch_queries = [
            [
                {"op": "reachable", "u": u, "v": v}
                for u, v in _probes(graph, BATCH_SIZE, seed=10 + i)
            ]
            for i in range(BATCHES)
        ]
        batch_start = time.perf_counter()
        for queries in batch_queries:
            status, payload = await client.batch(queries)
            assert status == 200 and len(payload["results"]) == BATCH_SIZE
        batch_elapsed = time.perf_counter() - batch_start
    finally:
        await client.close()
        await server.close()
        if Path(uds).exists():
            Path(uds).unlink()

    return {
        "build_seconds": round(build_seconds, 4),
        "build_io": service.index.metrics.total_io,
        "index_k": service.index.k,
        "direct": {
            "queries": DIRECT_QUERIES,
            "qps": round(DIRECT_QUERIES / direct_elapsed),
            "p50_us": round(_percentile(latencies, 50) * 1e6, 2),
            "p99_us": round(_percentile(latencies, 99) * 1e6, 2),
        },
        "http": {
            "queries": HTTP_QUERIES,
            "qps": round(HTTP_QUERIES / http_elapsed),
            "p50_us": round(_percentile(http_latencies, 50) * 1e6, 2),
            "p99_us": round(_percentile(http_latencies, 99) * 1e6, 2),
            "batch_qps": round(BATCHES * BATCH_SIZE / batch_elapsed),
        },
        "cache": service.cache.snapshot(),
    }


def run_suite():
    graph = generate_dag(NUM_NODES, 3.0, 60, seed=0)

    async def run():
        return {
            "workload": {
                "nodes": graph.num_nodes,
                "arcs": graph.num_arcs,
                "seed": 0,
            },
            "engines": {
                engine: await _bench_engine(graph, engine)
                for engine in ("fast", "paged")
            },
        }

    return asyncio.run(run())


def test_serve_latency_and_throughput(benchmark):
    out = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    write_bench_summary(out, Path(__file__).resolve().parents[1] / "BENCH_serve.json")
    for engine, result in out["engines"].items():
        print(
            f"\n{engine}: build={result['build_seconds']}s "
            f"(io={result['build_io']}), direct {result['direct']['qps']} qps "
            f"p50={result['direct']['p50_us']}us p99={result['direct']['p99_us']}us, "
            f"http {result['http']['qps']} qps "
            f"(batch {result['http']['batch_qps']} qps)"
        )

    fast, paged = out["engines"]["fast"], out["engines"]["paged"]
    # The acceptance target: 10k+ qps single-process on the fast engine's
    # direct path (an in-memory O(k) vector probe plus cache bookkeeping).
    assert fast["direct"]["qps"] >= 10_000
    # Engine choice prices the *build*, not the serving: the frozen
    # index answers at the same order of magnitude on both engines.
    assert paged["direct"]["qps"] >= fast["direct"]["qps"] / 4
    assert paged["build_io"] > fast["build_io"] == 0
    # Batching amortises HTTP framing: it must beat one-GET-per-query.
    assert fast["http"]["batch_qps"] > fast["http"]["qps"]


if __name__ == "__main__":
    summary = run_suite()
    write_bench_summary(
        summary, Path(__file__).resolve().parents[1] / "BENCH_serve.json"
    )
    for engine, result in summary["engines"].items():
        print(engine, result["direct"], result["http"])
