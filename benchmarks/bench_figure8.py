"""Benchmark: regenerate Figure 8 (high-selectivity PTC: total I/O)."""


def test_figure8(benchmark, profile):
    from repro.experiments.figures import figure8

    panels = benchmark.pedantic(figure8, args=(profile,), rounds=1, iterations=1)
    for panel in panels.values():
        print("\n" + panel.render())

    for panel in panels.values():
        # SRCH is the best algorithm at the smallest source count
        # (Section 6.3, conclusion 4).  BJ's reduction can tie it on a
        # near-trivial magic graph, so allow a 10% margin.
        smallest = {name: series[0] for name, series in panel.series.items()}
        assert smallest["SRCH"] <= 1.1 * min(smallest.values())

        # BJ never exceeds BTC by more than noise: its reduction can
        # only remove work (Section 6.3, conclusion 2).
        for bj_io, btc_io in zip(panel.series["BJ"], panel.series["BTC"]):
            assert bj_io <= btc_io * 1.1
