"""Benchmark: regenerate Table 3 (I/O and CPU cost breakdown of BTC)."""

from repro.metrics.report import format_table


def test_table3(benchmark, profile):
    from repro.experiments.tables import table3

    rows = benchmark.pedantic(table3, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Table 3. I/O and CPU cost of BTC (G6, CTC)"))

    assert [row["M"] for row in rows] == [10, 20, 50]
    # Paper conclusion (Section 6.1): the closure computation is
    # clearly I/O bound for all three buffer pool sizes.
    for row in rows:
        assert row["io_bound"], row
    # Page I/O falls as the buffer pool grows.
    assert rows[0]["page_io"] >= rows[1]["page_io"] >= rows[2]["page_io"]
