"""Benchmark: the related-work baselines against the paper's suite.

Regenerates the conclusion of the earlier studies the paper builds on
(Section 8): the graph-based algorithms beat the iterative (Seminaive)
and matrix-based (Warren) algorithms on full closure, while Seminaive
remains competitive only at high selectivity.
"""

from repro.baselines import make_baseline
from repro.core.query import Query, SystemConfig
from repro.core.registry import make_algorithm
from repro.graphs.datasets import sample_sources
from repro.metrics.report import format_table


def run_suite(profile):
    # Warren's bit matrix is n^2 / 8 bytes: at very small scales it
    # fits in the buffer pool and the comparison degenerates, so this
    # bench never shrinks below 1000 nodes.
    from repro.graphs.datasets import graph_family

    scale = min(profile.scale, 2)
    graph = graph_family("G5").generate(seed=0, scale=scale)
    system = SystemConfig(buffer_pages=10)
    rows = []
    for task, query in (
        ("ctc", Query.full()),
        ("ptc_s5", Query.ptc(sample_sources(graph, 5, seed=1))),
    ):
        for name in ("btc", "schmitz", "seminaive", "smart", "warshall", "warren"):
            algorithm = make_algorithm(name) if name == "btc" else make_baseline(name)
            result = algorithm.run(graph, query, system)
            rows.append(
                {
                    "task": task,
                    "algorithm": name,
                    "total_io": result.metrics.total_io,
                    "tuples_generated": result.metrics.tuples_generated,
                }
            )
    return rows


def test_baselines(benchmark, profile):
    rows = benchmark.pedantic(run_suite, args=(profile,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Related-work baselines (G5, M=10)"))

    io = {(row["task"], row["algorithm"]): row["total_io"] for row in rows}
    # Earlier studies' conclusions, reproduced on this substrate:
    # the graph-based algorithm beats the iterative and matrix-based
    # families on the full closure [1, 3, 19]...
    assert io[("ctc", "btc")] < io[("ctc", "seminaive")]
    assert io[("ctc", "btc")] < io[("ctc", "smart")]
    assert io[("ctc", "btc")] < io[("ctc", "warren")]
    assert io[("ctc", "btc")] < io[("ctc", "warshall")]
    # ...Seminaive always outperforms Smart [19]; Warren's passes beat
    # Warshall's pivot-major access pattern [26]...
    assert io[("ctc", "seminaive")] < io[("ctc", "smart")]
    assert io[("ctc", "warren")] <= io[("ctc", "warshall")]
    # ...the matrix algorithms cannot exploit selectivity at all, and
    # squaring also computes rows for every node [19]...
    assert io[("ptc_s5", "warren")] > io[("ptc_s5", "btc")]
    assert io[("ptc_s5", "smart")] > io[("ptc_s5", "seminaive")]
    # ...while Schmitz, like BTC, is graph-based and lands in the same
    # league, but without the marking optimisation BTC stays ahead
    # overall [12].
    assert io[("ctc", "schmitz")] < io[("ctc", "warren")]
